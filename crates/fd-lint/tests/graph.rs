//! Engine tests for the workspace call graph behind HP001/HP002:
//! cycle handling, cross-crate edges, the trait-object over-approximation,
//! suppression scoping for cross-file findings, and the dump formats.

use fd_lint::{analyze_sources, dump_graph_sources, Finding, GraphFormat, Options, SourceFile};

fn file(rel_path: &str, src: &str) -> SourceFile {
    SourceFile {
        rel_path: rel_path.to_string(),
        src: src.to_string(),
    }
}

fn hits<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings
        .iter()
        .filter(|f| f.rule == rule && !f.suppressed)
        .collect()
}

#[test]
fn recursion_cycle_terminates_and_still_reports_the_sink() {
    // a → b → a is a cycle; the BFS must terminate and still find the
    // panic inside the cycle.
    let src = "\
// fd-lint: hot_path
fn a(n: u32) { b(n) }
fn b(n: u32) { if n > 0 { a(n - 1) } else { panic!(\"bottom\") } }
";
    let report = analyze_sources(
        &[file("crates/fd-sim/src/cyc.rs", src)],
        &Options::default(),
    );
    let hp = hits(&report.findings, "HP001");
    assert_eq!(hp.len(), 1, "{:?}", report.findings);
    assert_eq!((hp[0].line, hp[0].col), (3, 45));
    assert!(hp[0].message.contains("a → b"), "{}", hp[0].message);
}

#[test]
fn qualified_calls_cross_crate_boundaries() {
    // A hot root in fd-detectors reaches a panic two crates away through
    // `Type::method` calls; the reported path names every hop.
    let det = "\
use fd_sim::queue::Queue;
// fd-lint: hot_path
fn poll() { Queue::take(); }
";
    let sim = "\
pub struct Queue;
impl Queue {
    pub fn take() { fd_core::bits::word(9) }
}
";
    let core = "\
pub fn word(i: usize) -> u64 { MASKS[i] }
const MASKS: [u64; 4] = [1, 2, 4, 8];
";
    let report = analyze_sources(
        &[
            file("crates/fd-detectors/src/poll.rs", det),
            file("crates/fd-sim/src/queue.rs", sim),
            file("crates/fd-core/src/bits.rs", core),
        ],
        &Options::default(),
    );
    let hp = hits(&report.findings, "HP001");
    assert_eq!(hp.len(), 1, "{:?}", report.findings);
    assert_eq!(hp[0].file, "crates/fd-core/src/bits.rs");
    assert!(
        hp[0].message.contains("poll → Queue::take → word"),
        "{}",
        hp[0].message
    );
}

#[test]
fn bare_method_calls_over_approximate_like_trait_objects() {
    // `det.check()` on a trait object cannot be resolved statically; the
    // graph links a bare `.check()` to every same-crate method named
    // `check`, so the panic in an impl the root may never dispatch to is
    // still reported. That over-approximation is the documented contract.
    let src = "\
trait Det { fn check(&self); }
struct A;
impl Det for A {
    fn check(&self) {}
}
struct B;
impl Det for B {
    fn check(&self) { unreachable!(\"B is never polled\") }
}
// fd-lint: hot_path
fn tick(d: &dyn Det) { d.check(); }
";
    let report = analyze_sources(
        &[file("crates/fd-detectors/src/dyn_det.rs", src)],
        &Options::default(),
    );
    let hp = hits(&report.findings, "HP001");
    assert_eq!(hp.len(), 1, "{:?}", report.findings);
    assert_eq!(hp[0].line, 8, "the sink in impl B is reached");
}

#[test]
fn hot_path_findings_are_suppressed_in_the_sink_file_not_the_root_file() {
    let root = "\
use fd_sim::deep::boom;
// fd-lint: hot_path
fn go() { boom(); }
";
    // An allow in the ROOT file must not silence a finding anchored in
    // the sink file…
    let root_allowed = "\
use fd_sim::deep::boom;
// fd-lint: allow(HP001, reason = \"wrong scope: the finding lives in deep.rs\")
// fd-lint: hot_path
fn go() { boom(); }
";
    let sink = "pub fn boom() { panic!(\"sink\") }\n";
    let sink_allowed = "\
// fd-lint: allow(HP001, reason = \"demo invariant\")
pub fn boom() { panic!(\"sink\") }
";
    let noisy = analyze_sources(
        &[
            file("crates/fd-sim/src/root.rs", root_allowed),
            file("crates/fd-sim/src/deep.rs", sink),
        ],
        &Options::default(),
    );
    assert_eq!(hits(&noisy.findings, "HP001").len(), 1);
    // …and SUP001 flags that misplaced allow as suppressing nothing.
    assert!(
        noisy
            .findings
            .iter()
            .any(|f| f.rule == "SUP001" && f.file == "crates/fd-sim/src/root.rs"),
        "{:?}",
        noisy.findings
    );

    // An allow on the sink line itself works.
    let quiet = analyze_sources(
        &[
            file("crates/fd-sim/src/root.rs", root),
            file("crates/fd-sim/src/deep.rs", sink_allowed),
        ],
        &Options::default(),
    );
    assert!(hits(&quiet.findings, "HP001").is_empty());
    let suppressed: Vec<_> = quiet
        .findings
        .iter()
        .filter(|f| f.rule == "HP001" && f.suppressed)
        .collect();
    assert_eq!(suppressed.len(), 1);
    assert_eq!(suppressed[0].reason.as_deref(), Some("demo invariant"));
}

#[test]
fn test_fns_are_neither_roots_nor_path_hops() {
    let src = "\
// fd-lint: hot_path
fn hot() {}
#[cfg(test)]
mod tests {
    // fd-lint: hot_path
    fn helper() { super::boom(); }
}
pub fn boom() { panic!(\"only reachable from tests\") }
";
    let report = analyze_sources(
        &[file("crates/fd-sim/src/tst.rs", src)],
        &Options::default(),
    );
    assert!(
        hits(&report.findings, "HP001").is_empty(),
        "{:?}",
        report.findings
    );
}

#[test]
fn graph_dumps_are_stable_and_mark_roots() {
    let files = [file(
        "crates/fd-sim/src/g.rs",
        "// fd-lint: hot_path\nfn hot() { helper(); }\nfn helper() {}\n",
    )];
    let json = dump_graph_sources(&files, GraphFormat::Json);
    assert!(json.starts_with("{\"version\":1,\"nodes\":["), "{json}");
    assert!(json.contains("\"label\":\"hot\""));
    assert!(json.contains("\"hot_path\":true"));
    assert!(json.contains("\"edges\":[{\"from\":0,\"to\":1,\"line\":2}]"));

    let dot = dump_graph_sources(&files, GraphFormat::Dot);
    assert!(dot.starts_with("digraph calls {"), "{dot}");
    assert!(dot.contains("fillcolor=salmon"), "hot roots are filled");
    assert!(dot.contains("n0 -> n1"));
}
