//! Robustness: the lexer, the use-rename resolver, and the whole
//! single-file pipeline must never panic, whatever bytes they are fed —
//! scanned files may be mid-edit garbage.

use fd_lint::{lint_source, Options};
use proptest::prelude::*;

/// Fragments the generator stitches together: Rust-ish material biased
/// toward the constructs the scanner actually parses (use trees,
/// renames, nesting, attributes, directives) plus raw noise.
const FRAGMENTS: &[&str] = &[
    "use ",
    "std",
    "::",
    "collections",
    "HashMap",
    "as ",
    "{",
    "}",
    ",",
    ";",
    "<",
    ">",
    "(",
    ")",
    "#[cfg(test)]",
    "#[cfg(feature = \"x\")]",
    "mod ",
    "fn ",
    "pub ",
    "struct ",
    "impl ",
    "for ",
    "in ",
    ".iter()",
    "unsafe ",
    "Instant::now()",
    "thread_rng()",
    "r#\"",
    "\"#",
    "\"",
    "'",
    "'a",
    "\\",
    "//",
    "/*",
    "*/",
    "///",
    "//!",
    "// fd-lint: allow(",
    "reason = \"",
    "\n",
    " ",
    "\t",
    "0x2e",
    "1.5e3",
    "..",
    "é",
    "🦀",
    "\u{0}",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn pipeline_never_panics_on_fragment_soup(picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..120)) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        // Must not panic; findings themselves are unconstrained.
        let _ = lint_source("crates/fd-sim/src/soup.rs", &src, &Options::default());
    }

    #[test]
    fn pipeline_never_panics_on_arbitrary_chars(codes in prop::collection::vec(any::<u32>(), 0..200)) {
        let src: String = codes
            .iter()
            .filter_map(|&c| char::from_u32(c % 0x11_0000))
            .collect();
        let _ = lint_source("crates/fd-sim/src/soup.rs", &src, &Options::default());
    }
}
