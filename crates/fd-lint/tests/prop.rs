//! Robustness: the lexer, the use-rename resolver, the item extractor,
//! the call-graph builder, and the whole pipeline must never panic,
//! whatever bytes they are fed — scanned files may be mid-edit garbage.

use fd_lint::{analyze_sources, lint_source, Options, SourceFile};
use proptest::prelude::*;

/// Fragments the generator stitches together: Rust-ish material biased
/// toward the constructs the scanner actually parses (use trees,
/// renames, nesting, attributes, directives) plus raw noise.
const FRAGMENTS: &[&str] = &[
    "use ",
    "std",
    "::",
    "collections",
    "HashMap",
    "as ",
    "{",
    "}",
    ",",
    ";",
    "<",
    ">",
    "(",
    ")",
    "#[cfg(test)]",
    "#[cfg(feature = \"x\")]",
    "mod ",
    "fn ",
    "pub ",
    "struct ",
    "impl ",
    "for ",
    "in ",
    ".iter()",
    "unsafe ",
    "Instant::now()",
    "thread_rng()",
    "r#\"",
    "\"#",
    "\"",
    "'",
    "'a",
    "\\",
    "//",
    "/*",
    "*/",
    "///",
    "//!",
    "// fd-lint: allow(",
    "reason = \"",
    "// fd-lint: hot_path",
    "match ",
    "=>",
    "_",
    "enum ",
    "Msg",
    "::",
    "self.",
    ".unwrap()",
    "panic!(",
    "where ",
    "dyn ",
    "&mut ",
    "obs_keys!",
    "Metric ",
    "\"a.b\"",
    "on_message",
    "\n",
    " ",
    "\t",
    "0x2e",
    "1.5e3",
    "..",
    "é",
    "🦀",
    "\u{0}",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn pipeline_never_panics_on_fragment_soup(picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..120)) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        // Must not panic; findings themselves are unconstrained.
        let _ = lint_source("crates/fd-sim/src/soup.rs", &src, &Options::default());
    }

    #[test]
    fn pipeline_never_panics_on_arbitrary_chars(codes in prop::collection::vec(any::<u32>(), 0..200)) {
        let src: String = codes
            .iter()
            .filter_map(|&c| char::from_u32(c % 0x11_0000))
            .collect();
        let _ = lint_source("crates/fd-sim/src/soup.rs", &src, &Options::default());
    }

    /// Cross-file phase over a garbage "workspace": token soup posing as
    /// the obs registry plus token soup in a detector crate must not
    /// panic the extractor, the graph builder, or the obs-key scanner.
    #[test]
    fn cross_file_phase_never_panics_on_fragment_soup(
        reg_picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..80),
        det_picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..80),
    ) {
        let reg: String = reg_picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let det: String = det_picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let files = [
            SourceFile { rel_path: "crates/fd-obs/src/keys.rs".into(), src: reg },
            SourceFile { rel_path: "crates/fd-detectors/src/soup.rs".into(), src: det },
        ];
        let _ = analyze_sources(&files, &Options::default());
    }
}
