//! Per-rule engine tests: every rule gets a positive case (fires), a
//! negative case (stays quiet), and the suppression contract is checked
//! both ways (a reasoned allow suppresses; a reasonless allow is itself
//! an error).

use fd_lint::{lint_source, Finding, Options, Severity};

/// Lint `src` as if it were the given workspace-relative file.
fn lint(rel_path: &str, src: &str) -> Vec<Finding> {
    lint_source(rel_path, src, &Options::default())
}

/// The unsuppressed findings for one rule ID.
fn hits<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings
        .iter()
        .filter(|f| f.rule == rule && !f.suppressed)
        .collect()
}

const SIM_FILE: &str = "crates/fd-sim/src/demo.rs";

// ---------------------------------------------------------------- ND001

#[test]
fn nd001_fires_on_hashmap_iteration() {
    let src = "use std::collections::HashMap;\n\
               struct S { m: HashMap<u32, u32> }\n\
               impl S {\n\
               fn f(&self) { for (k, v) in self.m.iter() { let _ = (k, v); } }\n\
               }\n";
    let f = lint(SIM_FILE, src);
    let h = hits(&f, "ND001");
    assert_eq!(h.len(), 1, "{f:?}");
    assert_eq!((h[0].line, h[0].severity), (4, Severity::Deny));
}

#[test]
fn nd001_sees_through_use_renames() {
    let src = "use std::collections::HashMap as FastMap;\n\
               fn f(m: FastMap<u32, u32>) -> Vec<u32> { m.keys().copied().collect() }\n";
    assert_eq!(hits(&lint(SIM_FILE, src), "ND001").len(), 1);
}

#[test]
fn nd001_quiet_on_btreemap_and_outside_sim_crates() {
    let ordered = "use std::collections::BTreeMap;\n\
                   fn f(m: BTreeMap<u32, u32>) -> Vec<u32> { m.keys().copied().collect() }\n";
    assert!(hits(&lint(SIM_FILE, ordered), "ND001").is_empty());
    let hash = "use std::collections::HashMap;\n\
                fn f(m: HashMap<u32, u32>) -> Vec<u32> { m.keys().copied().collect() }\n";
    // fd-obs is not a determinism-scoped crate.
    assert!(hits(&lint("crates/fd-obs/src/demo.rs", hash), "ND001").is_empty());
}

#[test]
fn nd001_quiet_in_test_code() {
    let src = "use std::collections::HashMap;\n\
               #[cfg(test)]\n\
               mod tests {\n\
               use super::*;\n\
               fn f(m: HashMap<u32, u32>) -> Vec<u32> { m.keys().copied().collect() }\n\
               }\n";
    assert!(hits(&lint(SIM_FILE, src), "ND001").is_empty());
}

// ---------------------------------------------------------------- ND002

#[test]
fn nd002_fires_on_wall_clock() {
    let src = "use std::time::Instant;\nfn f() -> Instant { Instant::now() }\n";
    let f = lint(SIM_FILE, src);
    let h = hits(&f, "ND002");
    assert_eq!(h.len(), 1, "{f:?}");
    assert_eq!(h[0].line, 2);
}

#[test]
fn nd002_quiet_in_exempt_crates() {
    let src = "use std::time::Instant;\nfn f() -> Instant { Instant::now() }\n";
    for file in [
        "crates/fd-obs/src/demo.rs",
        "crates/fd-runtime/src/demo.rs",
        "crates/fd-bench/src/demo.rs",
    ] {
        assert!(hits(&lint(file, src), "ND002").is_empty(), "{file}");
    }
}

// ---------------------------------------------------------------- ND003

#[test]
fn nd003_fires_on_thread_rng_at_site() {
    let src = "use rand::thread_rng;\n\
               use rand::Rng;\n\
               fn f() -> u64 { thread_rng().gen() }\n";
    let f = lint(SIM_FILE, src);
    let h = hits(&f, "ND003");
    assert_eq!(h.len(), 1, "{f:?}");
    assert_eq!((h[0].line, h[0].col), (3, 17));
}

#[test]
fn nd003_fires_on_rand_random_path() {
    let src = "fn f() -> u64 { rand::random() }\n";
    assert_eq!(hits(&lint(SIM_FILE, src), "ND003").len(), 1);
}

#[test]
fn nd003_quiet_on_seeded_rng() {
    let src = "use rand::{rngs::SmallRng, Rng, SeedableRng};\n\
               fn f(seed: u64) -> u64 { SmallRng::seed_from_u64(seed).gen() }\n";
    assert!(hits(&lint(SIM_FILE, src), "ND003").is_empty());
}

// ---------------------------------------------------------------- ND004

#[test]
fn nd004_fires_on_float_keys() {
    let src = "use std::collections::BTreeMap;\n\
               fn f(m: BTreeMap<f64, u32>) -> usize { m.len() }\n";
    let f = lint(SIM_FILE, src);
    assert_eq!(hits(&f, "ND004").len(), 1, "{f:?}");
}

#[test]
fn nd004_quiet_on_float_values() {
    let src = "use std::collections::BTreeMap;\n\
               fn f(m: BTreeMap<u32, f64>) -> usize { m.len() }\n";
    assert!(hits(&lint(SIM_FILE, src), "ND004").is_empty());
}

// ---------------------------------------------------------------- ND005

#[test]
fn nd005_fires_on_rc_keys_and_ptr_identity() {
    let keyed = "use std::collections::BTreeMap;\nuse std::rc::Rc;\n\
                 fn f(m: BTreeMap<Rc<str>, u32>) -> usize { m.len() }\n";
    assert_eq!(hits(&lint(SIM_FILE, keyed), "ND005").len(), 1);
    let as_ptr = "use std::rc::Rc;\n\
                  fn f(a: &Rc<u32>) -> *const u32 { Rc::as_ptr(a) }\n";
    assert_eq!(hits(&lint(SIM_FILE, as_ptr), "ND005").len(), 1);
}

#[test]
fn nd005_quiet_on_plain_rc_use() {
    let src = "use std::rc::Rc;\nfn f(a: Rc<u32>) -> u32 { *a }\n";
    assert!(hits(&lint(SIM_FILE, src), "ND005").is_empty());
}

// ---------------------------------------------------------------- UH001

#[test]
fn uh001_fires_on_unsafe_outside_allowlist() {
    let src = "fn f(p: *const u32) -> u32 { unsafe { *p } }\n";
    let f = lint(SIM_FILE, src);
    let h = hits(&f, "UH001");
    assert_eq!(h.len(), 1, "{f:?}");
    assert_eq!(h[0].severity, Severity::Deny);
}

#[test]
fn uh001_quiet_in_the_allocator_module() {
    let src = "fn f(p: *const u32) -> u32 { unsafe { *p } }\n";
    assert!(hits(&lint("crates/fd-obs/src/alloc.rs", src), "UH001").is_empty());
}

// ---------------------------------------------------------------- UH002

#[test]
fn uh002_fires_only_in_hot_path_files() {
    let src = "fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    let hot = lint("crates/fd-sim/src/world.rs", src);
    assert_eq!(hits(&hot, "UH002").len(), 1, "{hot:?}");
    assert_eq!(hits(&hot, "UH002")[0].severity, Severity::Warn);
    assert!(hits(&lint(SIM_FILE, src), "UH002").is_empty());
}

// ---------------------------------------------------------------- UH003

#[test]
fn uh003_fires_on_undocumented_pub_item() {
    let src = "pub fn f() {}\n";
    let f = lint("crates/fd-core/src/demo.rs", src);
    assert_eq!(hits(&f, "UH003").len(), 1, "{f:?}");
}

#[test]
fn uh003_quiet_when_documented_or_outside_docs_crates() {
    let documented = "/// Does f things.\npub fn f() {}\n";
    assert!(hits(&lint("crates/fd-core/src/demo.rs", documented), "UH003").is_empty());
    let bare = "pub fn f() {}\n";
    assert!(hits(&lint("crates/fd-campaign/src/demo.rs", bare), "UH003").is_empty());
}

#[test]
fn uh003_escalates_to_deny_on_the_adversary_surface_files() {
    let bare = "pub fn f() {}\n";
    for file in ["crates/fd-sim/src/link.rs", "crates/fd-sim/src/topology.rs"] {
        let f = lint(file, bare);
        let h = hits(&f, "UH003");
        assert_eq!(h.len(), 1, "{file}");
        assert_eq!(h[0].severity, Severity::Deny, "{file}");
        assert!(h[0].message.contains("adversary surface"), "{file}");
    }
    // Elsewhere in fd-sim the rule stays a warning.
    assert_eq!(
        hits(&lint(SIM_FILE, bare), "UH003")[0].severity,
        Severity::Warn
    );
}

#[test]
fn nd001_covers_the_chaos_crate() {
    let src = "use std::collections::HashMap;\n\
               fn f(m: HashMap<u32, u32>) -> Vec<u32> { m.keys().copied().collect() }\n";
    assert_eq!(
        hits(&lint("crates/fd-chaos/src/demo.rs", src), "ND001").len(),
        1
    );
}

// ---------------------------------------------------------- suppressions

#[test]
fn reasoned_allow_suppresses_and_keeps_the_reason() {
    let src = "use std::time::Instant;\n\
               // fd-lint: allow(ND002, reason = \"timing metric, never fed back\")\n\
               fn f() -> Instant { Instant::now() }\n";
    let f = lint(SIM_FILE, src);
    assert!(hits(&f, "ND002").is_empty(), "{f:?}");
    let sup: Vec<_> = f.iter().filter(|x| x.rule == "ND002").collect();
    assert_eq!(sup.len(), 1);
    assert!(sup[0].suppressed);
    assert_eq!(
        sup[0].reason.as_deref(),
        Some("timing metric, never fed back")
    );
    assert!(f.iter().all(|x| x.rule != "SUP001"));
}

#[test]
fn reason_with_commas_and_parens_parses() {
    let src = "use std::time::Instant;\n\
               fn f() -> Instant { Instant::now() } // fd-lint: allow(ND002, reason = \"a, b (c), d\")\n";
    let f = lint(SIM_FILE, src);
    assert!(hits(&f, "ND002").is_empty(), "{f:?}");
    assert_eq!(
        f.iter()
            .find(|x| x.rule == "ND002")
            .unwrap()
            .reason
            .as_deref(),
        Some("a, b (c), d")
    );
}

#[test]
fn reasonless_allow_is_itself_an_error() {
    let src = "use std::time::Instant;\n\
               // fd-lint: allow(ND002)\n\
               fn f() -> Instant { Instant::now() }\n";
    let f = lint(SIM_FILE, src);
    let sup001 = hits(&f, "SUP001");
    assert_eq!(sup001.len(), 1, "{f:?}");
    assert_eq!(sup001[0].severity, Severity::Deny);
    // And the underlying finding is NOT suppressed.
    assert_eq!(hits(&f, "ND002").len(), 1);
}

#[test]
fn allow_naming_unknown_rule_is_an_error() {
    let src = "// fd-lint: allow(ND999, reason = \"no such rule\")\nfn f() {}\n";
    let f = lint(SIM_FILE, src);
    assert_eq!(hits(&f, "SUP001").len(), 1, "{f:?}");
}

#[test]
fn allow_for_a_different_rule_does_not_suppress() {
    let src = "use std::time::Instant;\n\
               // fd-lint: allow(ND001, reason = \"wrong rule on purpose\")\n\
               fn f() -> Instant { Instant::now() }\n";
    let f = lint(SIM_FILE, src);
    assert_eq!(hits(&f, "ND002").len(), 1, "{f:?}");
}

// --------------------------------------------------------- rule filters

#[test]
fn rule_filter_restricts_to_named_rules() {
    let src = "use std::collections::HashMap;\n\
               use std::time::Instant;\n\
               fn g() -> Instant { Instant::now() }\n\
               fn f(m: HashMap<u32, u32>) -> Vec<u32> { m.keys().copied().collect() }\n";
    let only_nd002 = lint_source(
        SIM_FILE,
        src,
        &Options {
            rules: vec!["ND002".to_string()],
        },
    );
    assert_eq!(hits(&only_nd002, "ND002").len(), 1);
    assert!(hits(&only_nd002, "ND001").is_empty());
}

#[test]
fn unknown_rule_filter_is_rejected_listing_valid_ids() {
    let err = fd_lint::validate_rule_ids(&["ND042".to_string()]).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("ND042") && msg.contains("ND001") && msg.contains("UH003"),
        "{msg}"
    );
}
