//! The linter's own acceptance gate, run as a test: the workspace must
//! be clean under `--deny-warnings` semantics (zero unsuppressed
//! findings, every suppression reasoned), and a seeded hazard must be
//! caught at the right file and line.

use fd_lint::{lint_source, lint_workspace, Options};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/fd-lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("fd-lint lives two levels under the workspace root")
}

#[test]
fn workspace_is_clean_under_deny_warnings() {
    let report = lint_workspace(workspace_root(), &Options::default()).expect("lint runs");
    assert!(
        report.files_scanned > 50,
        "scanned {}",
        report.files_scanned
    );
    let loud: Vec<_> = report.findings.iter().filter(|f| !f.suppressed).collect();
    assert!(
        loud.is_empty(),
        "unsuppressed findings:\n{}",
        loud.iter()
            .map(|f| format!(
                "  {}[{}] {}:{}:{}",
                f.severity.label(),
                f.rule,
                f.file,
                f.line,
                f.col
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(report.exit_code(true), 0);
    for f in report.findings.iter().filter(|f| f.suppressed) {
        assert!(
            f.reason.as_deref().is_some_and(|r| !r.trim().is_empty()),
            "suppression without a reason at {}:{}",
            f.file,
            f.line
        );
    }
}

#[test]
fn seeded_thread_rng_in_fd_sim_fails_with_nd003_at_site() {
    let path = workspace_root().join("crates/fd-sim/src/world.rs");
    let src = std::fs::read_to_string(&path).expect("world.rs is readable");
    // Seed an ambient-RNG call near the end of the file (inside a new
    // fn so the token context is realistic).
    let mut lines: Vec<&str> = src.lines().collect();
    let seeded_line = "fn seeded_hazard() -> u64 { rand::thread_rng().gen() }";
    lines.push(seeded_line);
    let seeded = lines.join("\n");
    let findings = lint_source("crates/fd-sim/src/world.rs", &seeded, &Options::default());
    let nd003: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "ND003" && !f.suppressed)
        .collect();
    assert_eq!(nd003.len(), 1, "{nd003:?}");
    let f = nd003[0];
    assert_eq!(f.file, "crates/fd-sim/src/world.rs");
    assert_eq!(f.line as usize, lines.len(), "fires on the seeded line");
    let col = f.col as usize;
    assert_eq!(
        &seeded_line[col - 1..col - 1 + "thread_rng".len()],
        "thread_rng",
        "column points at the call"
    );
}
