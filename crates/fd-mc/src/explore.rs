//! The bounded-DFS exploration driver.
//!
//! [`explore`] enumerates, for one [`McTarget`], every schedule the
//! budgets allow: an outer loop over crash schedules (victims placed on
//! a time grid — crashes commute with everything inside an instant, so
//! placing them between instants loses nothing, see DESIGN.md), and an
//! inner depth-first search over scheduler nondeterminism (same-instant
//! delivery order, timeout-vs-delivery races, forced link losses).
//!
//! Two prunings keep the search tractable without losing violations:
//!
//! * **Sleep sets** (partial-order reduction): after exploring option
//!   `a` at a choice point, sibling subtrees need not re-explore `a`
//!   first when `a` is independent of the sibling — two options are
//!   independent when they mutate different single processes. This is
//!   Godefroid's sleep-set construction keyed on the per-process
//!   footprint of message handlers and timers.
//! * **Visited states**: the world's incremental state digest (see
//!   `fd_sim::WorldBuilder::track_state`) keys a visited set; a state
//!   reached again with no larger sleep set and no more remaining depth
//!   cannot reach anything new. Soundness of the digest requires an
//!   RNG-free network, which the kernel asserts.
//!
//! Both prunings are switchable ([`McConfig::por`] /
//! [`McConfig::dedup`]) so their soundness is testable: exploration
//! with and without them must find the same violations and the same
//! set of final states.

use crate::replay::{Choice, CpRecord, Replayer};
use crate::witness::{shrink_witness, Witness};
use fd_chaos::{ChaosKind, DetectorKind};
use fd_core::properties::run_named_check;
use fd_sim::{ProcessId, SchedWorld, SimDuration, Time, Trace};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// Exploration budgets and switches.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Maximum recorded choice points per run; deeper nondeterminism is
    /// resolved canonically (and reported as a depth truncation).
    pub depth: usize,
    /// Maximum forced link losses ([`Choice::Drop`]) per run.
    pub drops: usize,
    /// Maximum crash victims per crash schedule (0 = crash-free).
    pub crashes: usize,
    /// Crashes are placed at grid points in `[0, crash_window]`.
    pub crash_window: Time,
    /// The crash placement grid step.
    pub crash_grid: SimDuration,
    /// Sleep-set partial-order reduction on/off.
    pub por: bool,
    /// Visited-state pruning on/off (needs a state-tracking world).
    pub dedup: bool,
    /// Hard cap on exploration runs — the safety valve that turns a
    /// state-space explosion into a reported truncation instead of a
    /// hang.
    pub max_runs: usize,
}

impl Default for McConfig {
    fn default() -> McConfig {
        McConfig {
            depth: 12,
            drops: 0,
            crashes: 0,
            crash_window: Time::from_millis(100),
            crash_grid: SimDuration::from_millis(25),
            por: true,
            dedup: true,
            max_runs: 200_000,
        }
    }
}

/// One system under exploration: a world factory plus the properties
/// every explored run must satisfy.
pub struct McTarget {
    /// Human-readable name (labels reports and witnesses).
    pub name: String,
    /// Number of processes.
    pub n: usize,
    /// Run horizon: every run executes all events up to this time.
    pub horizon: Time,
    /// The detector kind recorded in witness plans (so a witness is a
    /// self-contained `ChaosPlan` the campaign tooling understands).
    pub detector: DetectorKind,
    /// Named property checks (see `fd_core::properties::NAMED_CHECKS`)
    /// evaluated on every explored run's trace.
    pub properties: Vec<&'static str>,
    /// Builds a fresh world for one run. Must be deterministic: two
    /// calls must yield byte-identical worlds (the driver injects crash
    /// schedules and scheduling choices on top). The world should be
    /// built with `track_state(true)` so visited-state pruning works.
    pub factory: Box<dyn Fn() -> Box<dyn SchedWorld>>,
}

/// Counters describing one exploration.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ExploreStats {
    /// Full executions performed (excluding shrinking).
    pub runs: usize,
    /// Extra executions spent shrinking witnesses.
    pub shrink_runs: usize,
    /// Crash schedules enumerated.
    pub schedules: usize,
    /// Choice points expanded across all runs.
    pub choice_points: usize,
    /// Branches skipped by sleep-set reduction.
    pub sleep_skips: usize,
    /// Subtrees pruned by the visited-state set.
    pub visited_hits: usize,
    /// Distinct state digests entered into the visited set.
    pub distinct_states: usize,
    /// Longest recorded choice-trace prefix explored.
    pub max_prefix_len: usize,
    /// Runs whose nondeterminism exceeded the depth budget (resolved
    /// canonically past the cap — coverage below the cap is exhaustive,
    /// beyond it is not).
    pub depth_capped_runs: usize,
    /// Runs on which at least one property failed (each property gets
    /// one shrunk witness per crash schedule; this counts every
    /// violating run).
    pub violating_runs: usize,
    /// True when `max_runs` stopped the search early.
    pub truncated: bool,
}

/// One violation found by exploration, with its replayable witness.
#[derive(Debug, Clone, Serialize)]
pub struct FoundViolation {
    /// The named property that failed.
    pub property: String,
    /// Human-readable failure detail (from the shrunk run).
    pub detail: String,
    /// The shrunk, replayable witness.
    pub witness: Witness,
}

/// The result of exploring one target.
#[derive(Debug, Serialize)]
pub struct McReport {
    /// Target name.
    pub target: String,
    /// Process count.
    pub n: usize,
    /// Exploration counters.
    pub stats: ExploreStats,
    /// Every distinct violation found (deduplicated by property and
    /// violating-trace digest), shrunk.
    pub violations: Vec<FoundViolation>,
    /// True when the bounded state space was fully explored (no
    /// `max_runs` truncation). Depth caps are reported separately in
    /// [`ExploreStats::depth_capped_runs`].
    pub complete: bool,
    /// Every distinct final state digest reached (horizon states),
    /// sorted. Exploration with and without POR must agree on this
    /// set — the invariant the soundness proptests check.
    pub final_digests: Vec<u64>,
}

/// One failed named check on an explored run.
#[derive(Debug, Clone)]
pub struct CheckFailure {
    /// The `NAMED_CHECKS` name that failed (the stable identifier —
    /// witnesses and reports key on this, not on the checker's
    /// internal violation label).
    pub check: &'static str,
    /// The underlying violation, with its human-readable detail.
    pub violation: fd_core::properties::Violation,
}

/// One executed run: its recorded choice points and verdicts.
pub struct Exec {
    /// The recorded choice points, in execution order.
    pub log: Vec<CpRecord>,
    /// FNV digest of the run's full trace.
    pub trace_digest: u64,
    /// The world's state digest at the horizon.
    pub final_digest: u64,
    /// Named checks that failed on this run's trace.
    pub violations: Vec<CheckFailure>,
    /// The run's trace (kept for witness details).
    pub trace: Trace,
    /// True when a scripted choice did not match the enabled set.
    pub diverged: bool,
    /// True when the depth budget truncated recording.
    pub depth_capped: bool,
}

/// Execute one run of `target` under a crash schedule and choice
/// script; check every target property on the resulting trace.
///
/// This is *the* execution function — exploration, shrinking, and
/// witness replay all go through it, which is what makes witnesses
/// byte-identical to the runs that produced them.
pub fn run_one(
    target: &McTarget,
    cfg: &McConfig,
    schedule: &[(ProcessId, Time)],
    script: &[Choice],
) -> Exec {
    let mut world = (target.factory)();
    assert_eq!(world.n(), target.n, "factory world size != target.n");
    for &(pid, at) in schedule {
        world.schedule_crash(pid, at);
    }
    let mut rep = Replayer::new(script, cfg.depth, cfg.drops);
    world.run_scheduled_until(target.horizon, &mut rep);
    let final_digest = world.state_digest();
    let (trace, _metrics) = world.take_results();
    let trace_digest = trace.digest();
    let mut violations = Vec::new();
    for name in &target.properties {
        match run_named_check(name, &trace, target.n, target.horizon) {
            Some(Err(v)) => violations.push(CheckFailure {
                check: name,
                violation: v,
            }),
            Some(Ok(())) => {}
            None => panic!("unknown named check {name:?} in target {}", target.name),
        }
    }
    Exec {
        log: rep.log,
        trace_digest,
        final_digest,
        violations,
        trace,
        diverged: rep.diverged,
        depth_capped: rep.depth_capped,
    }
}

/// A sleep-set entry: what was explored, identified by content.
/// `(is_drop, event key, footprint)` — a drop and a delivery of the
/// same message are distinct actions with the same key.
type SleepEntry = (bool, u64, Option<ProcessId>);

/// Two actions commute iff both have single-process footprints and the
/// footprints differ. Anything touching global state (`None` target)
/// is conservatively dependent on everything.
fn independent(a: &SleepEntry, b: &SleepEntry) -> bool {
    match (a.2, b.2) {
        (Some(x), Some(y)) => x != y,
        _ => false,
    }
}

/// Per-digest cap on remembered visited entries: past this, re-visits
/// re-explore rather than grow the set without bound.
const VISITED_ENTRIES_PER_DIGEST: usize = 8;

/// One fully-explored visit of a state digest: the sorted sleep-set
/// identities in force, the prefix length, and the drops used. A
/// re-visit is prunable only against an entry at least as permissive on
/// all three (see `expand`).
type VisitedEntry = (Vec<(bool, u64)>, usize, usize);

struct Dfs<'t> {
    target: &'t McTarget,
    cfg: &'t McConfig,
    schedule: Vec<(ProcessId, Time)>,
    /// digest → entries that were fully explored from that state.
    visited: BTreeMap<u64, Vec<VisitedEntry>>,
    stats: ExploreStats,
    seen: BTreeSet<String>,
    violations: Vec<FoundViolation>,
    final_digests: BTreeSet<u64>,
    stop: bool,
}

impl Dfs<'_> {
    fn run(&mut self, script: &[Choice]) -> Exec {
        self.stats.runs += 1;
        let exec = run_one(self.target, self.cfg, &self.schedule, script);
        if exec.depth_capped {
            self.stats.depth_capped_runs += 1;
        }
        exec
    }

    fn note(&mut self, exec: &Exec, prefix: &[Choice]) {
        self.final_digests.insert(exec.final_digest);
        if !exec.violations.is_empty() {
            self.stats.violating_runs += 1;
        }
        for f in &exec.violations {
            if !self.seen.insert(f.check.to_string()) {
                continue;
            }
            let (schedule, choices, shrunk) = shrink_witness(
                self.target,
                self.cfg,
                self.schedule.clone(),
                prefix.to_vec(),
                f.check,
                &mut self.stats.shrink_runs,
            );
            self.violations.push(FoundViolation {
                property: f.check.to_string(),
                detail: shrunk
                    .violations
                    .iter()
                    .find(|sf| sf.check == f.check)
                    .map(|sf| sf.violation.detail.clone())
                    .unwrap_or_else(|| f.violation.detail.clone()),
                witness: Witness::new(self.target, &schedule, choices, f.check, &shrunk),
            });
        }
    }

    fn visit(&mut self, prefix: &mut Vec<Choice>, sleep: Vec<SleepEntry>) {
        if self.stop {
            return;
        }
        if self.stats.runs >= self.cfg.max_runs {
            self.stats.truncated = true;
            self.stop = true;
            return;
        }
        let exec = self.run(prefix);
        self.note(&exec, prefix);
        self.expand(prefix, &exec, sleep);
    }

    fn expand(&mut self, prefix: &mut Vec<Choice>, exec: &Exec, sleep: Vec<SleepEntry>) {
        if self.stop {
            return;
        }
        let i = prefix.len();
        let Some(cp) = exec.log.get(i) else {
            return;
        };
        self.stats.choice_points += 1;
        self.stats.max_prefix_len = self.stats.max_prefix_len.max(i + 1);

        if self.cfg.dedup {
            if let Some(d) = cp.digest {
                let mut skeys: Vec<(bool, u64)> = sleep.iter().map(|s| (s.0, s.1)).collect();
                skeys.sort_unstable();
                let entries = self.visited.entry(d).or_default();
                // A previous exploration from this state covers this one
                // iff it had no *more* sleeping (a subset sleeps ⇒ more
                // was explored), at least as much remaining depth, and
                // at least as much remaining drop budget.
                if entries.iter().any(|(sk, len, du)| {
                    *len <= i && *du <= cp.drops_used && sk.iter().all(|k| skeys.contains(k))
                }) {
                    self.stats.visited_hits += 1;
                    return;
                }
                if entries.is_empty() {
                    self.stats.distinct_states += 1;
                }
                if entries.len() < VISITED_ENTRIES_PER_DIGEST {
                    entries.push((skeys, i, cp.drops_used));
                }
            }
        }

        let mut explored: Vec<SleepEntry> = Vec::new();
        for (oi, opt) in cp.options.iter().enumerate() {
            if self.stop {
                return;
            }
            let entry: SleepEntry = (opt.choice.is_drop(), opt.key, opt.target);
            if self.cfg.por && sleep.iter().any(|s| s.0 == entry.0 && s.1 == entry.1) {
                self.stats.sleep_skips += 1;
                continue;
            }
            let child_sleep: Vec<SleepEntry> = if self.cfg.por {
                sleep
                    .iter()
                    .chain(explored.iter())
                    .filter(|s| independent(s, &entry))
                    .copied()
                    .collect()
            } else {
                Vec::new()
            };
            prefix.push(opt.choice);
            if oi == 0 {
                // `exec` already *is* the execution of prefix + the
                // canonical choice — reuse it instead of re-running.
                self.expand(prefix, exec, child_sleep);
            } else {
                self.visit(prefix, child_sleep);
            }
            prefix.pop();
            if self.cfg.por {
                explored.push(entry);
            }
        }
    }
}

/// Enumerate every crash schedule the budgets allow: for each victim
/// set of size `1..=cfg.crashes`, each assignment of grid times in
/// `[0, crash_window]`, plus the crash-free schedule. Crash times are
/// enumerated on a grid because within an instant a crash commutes
/// with every other event of the batch (the kernel consumes crashes
/// before the instant's deliveries either way), so only the *instant*
/// of a crash matters, and between grid points detectors see the same
/// timeout-quantized behaviour (see DESIGN.md for the caveat).
pub fn crash_schedules(n: usize, cfg: &McConfig) -> Vec<Vec<(ProcessId, Time)>> {
    let mut out = vec![Vec::new()];
    if cfg.crashes == 0 || cfg.crash_grid.0 == 0 {
        return out;
    }
    let mut times = Vec::new();
    let mut t = 0u64;
    while t <= cfg.crash_window.0 {
        times.push(Time(t));
        t += cfg.crash_grid.0;
    }
    // Victim subsets in increasing-pid order; times assigned
    // independently per victim (cartesian product).
    fn extend(
        n: usize,
        max_k: usize,
        times: &[Time],
        start: usize,
        cur: &mut Vec<(ProcessId, Time)>,
        out: &mut Vec<Vec<(ProcessId, Time)>>,
    ) {
        if cur.len() == max_k {
            return;
        }
        for pid in start..n {
            for &at in times {
                cur.push((ProcessId(pid), at));
                out.push(cur.clone());
                extend(n, max_k, times, pid + 1, cur, out);
                cur.pop();
            }
        }
    }
    let mut cur = Vec::new();
    extend(n, cfg.crashes, &times, 0, &mut cur, &mut out);
    out
}

/// Exhaustively explore `target` within the budgets of `cfg`.
pub fn explore(target: &McTarget, cfg: &McConfig) -> McReport {
    let mut stats = ExploreStats::default();
    let mut violations = Vec::new();
    let mut final_digests = BTreeSet::new();
    let mut truncated = false;
    let mut runs_so_far = 0usize;
    for schedule in crash_schedules(target.n, cfg) {
        stats.schedules += 1;
        let mut dfs = Dfs {
            target,
            cfg,
            schedule,
            visited: BTreeMap::new(),
            stats: ExploreStats::default(),
            seen: BTreeSet::new(),
            violations: Vec::new(),
            final_digests: BTreeSet::new(),
            stop: false,
        };
        // Budget the inner search with what remains of the global cap.
        dfs.stats.runs = runs_so_far;
        dfs.visit(&mut Vec::new(), Vec::new());
        runs_so_far = dfs.stats.runs;
        stats.shrink_runs += dfs.stats.shrink_runs;
        stats.choice_points += dfs.stats.choice_points;
        stats.sleep_skips += dfs.stats.sleep_skips;
        stats.visited_hits += dfs.stats.visited_hits;
        stats.distinct_states += dfs.stats.distinct_states;
        stats.max_prefix_len = stats.max_prefix_len.max(dfs.stats.max_prefix_len);
        stats.depth_capped_runs += dfs.stats.depth_capped_runs;
        stats.violating_runs += dfs.stats.violating_runs;
        violations.extend(dfs.violations);
        final_digests.extend(dfs.final_digests);
        if dfs.stats.truncated {
            truncated = true;
            break;
        }
    }
    stats.runs = runs_so_far;
    stats.truncated = truncated;
    McReport {
        target: target.name.clone(),
        n: target.n,
        stats,
        violations,
        complete: !truncated,
        final_digests: final_digests.into_iter().collect(),
    }
}

/// Build the `ChaosKind::Crash` events of a crash schedule — the form
/// witnesses embed so campaign tooling can read them.
pub fn schedule_to_chaos(schedule: &[(ProcessId, Time)]) -> Vec<(Time, ChaosKind)> {
    schedule
        .iter()
        .map(|&(pid, at)| (at, ChaosKind::Crash { pid }))
        .collect()
}
