//! # fd-mc — bounded exhaustive schedule exploration for `fd-sim` worlds
//!
//! Randomized campaigns (1000 seeds of `ecfd campaign`) sample the
//! schedule space; this crate *enumerates* it, within explicit budgets.
//! The motivating bug class is PR 6's retransmit hole: one lost
//! pre-GST message wedging consensus rounds forever, found only at
//! seed 147 of a thousand. A seed is one arbitrary linearization per
//! instant plus one arbitrary loss pattern; exhaustive exploration at
//! small `n` checks *every* same-instant delivery order, every
//! timeout-vs-delivery race, every in-budget forced loss, and every
//! grid-placed crash schedule — the parametric-verification stance of
//! Tran/Konnov/Widder applied at the concrete small cutoffs (`n` = 3,
//! 4) where the paper's quorum arithmetic already bites.
//!
//! The pieces:
//!
//! * [`McTarget`] — a deterministic world factory plus the named
//!   properties (see `fd_core::properties::NAMED_CHECKS` and
//!   PROPERTIES.md) every explored run must satisfy.
//! * [`explore`] — the bounded DFS over scheduler nondeterminism,
//!   pruned by sleep-set partial-order reduction and a state-digest
//!   visited set (both switchable, both soundness-tested).
//! * [`Witness`] — a violation's replayable counterexample: a
//!   `ChaosPlan` plus choice trace, greedily shrunk, byte-identical
//!   under [`replay_witness`].
//!
//! Exploration is exact, not probabilistic: a clean [`McReport`] with
//! `complete = true` and no depth caps means *no* schedule within the
//! budgets violates the target's properties.
//!
//! ## Example
//!
//! ```
//! use fd_mc::{explore, McConfig, McTarget};
//! use fd_sim::prelude::*;
//! use fd_sim::LinkModel;
//!
//! // Two processes ping each other once; nothing to violate, but the
//! // exploration enumerates both delivery orders at the shared instant.
//! struct Ping;
//! #[derive(Clone, Debug)]
//! struct Hi;
//! impl SimMessage for Hi {
//!     fn kind(&self) -> &'static str { "hi" }
//! }
//! impl Actor for Ping {
//!     type Msg = Hi;
//!     fn on_start(&mut self, ctx: &mut Context<'_, Hi>) {
//!         ctx.send_to_others(Hi);
//!     }
//!     fn on_message(&mut self, _: &mut Context<'_, Hi>, _: ProcessId, _: Hi) {}
//!     fn on_timer(&mut self, _: &mut Context<'_, Hi>, _: TimerTag) {}
//! }
//!
//! let target = McTarget {
//!     name: "ping".into(),
//!     n: 2,
//!     horizon: Time::from_millis(10),
//!     detector: fd_chaos::DetectorKind::Heartbeat,
//!     properties: vec![],
//!     factory: Box::new(|| {
//!         let net = NetworkConfig::new(2)
//!             .with_default(LinkModel::reliable_const(SimDuration::from_millis(1)));
//!         Box::new(WorldBuilder::new(net).track_state(true).build(|_, _| Ping))
//!     }),
//! };
//! let report = explore(&target, &McConfig::default());
//! assert!(report.complete && report.violations.is_empty());
//! assert!(report.stats.runs >= 2); // both orders of the t=1ms batch
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod explore;
pub mod replay;
pub mod witness;

pub use explore::{
    crash_schedules, explore, run_one, Exec, ExploreStats, FoundViolation, McConfig, McReport,
    McTarget,
};
pub use replay::{Choice, CpRecord, OptionRec, Replayer};
pub use witness::{replay_witness, shrink_witness, ReplayOutcome, Witness};

#[cfg(test)]
mod tests {
    use super::*;
    use fd_core::obs;
    use fd_sim::prelude::*;
    use fd_sim::LinkModel;

    /// A deliberately race-prone toy consensus: p0 proposes 7 to the
    /// others; each other process decides the first proposal it
    /// receives, or its own pid if its local timeout fires first. On
    /// reliable links the proposal always wins the race (1ms delay vs
    /// 10ms timeout) and everyone agrees on 7; only a forced loss can
    /// push a process onto the timeout path and break agreement.
    struct RaceDecide {
        decided: bool,
    }

    #[derive(Clone, Debug)]
    struct Propose(u64);
    impl SimMessage for Propose {
        fn kind(&self) -> &'static str {
            "race.propose"
        }
    }

    const TIMEOUT: TimerTag = TimerTag {
        ns: 0x7e57,
        kind: 1,
        data: 0,
    };

    impl Actor for RaceDecide {
        type Msg = Propose;
        fn on_start(&mut self, ctx: &mut Context<'_, Propose>) {
            if ctx.me() == ProcessId(0) {
                ctx.observe(obs::PROPOSE, Payload::U64(7));
                self.decided = true; // p0 abstains from deciding
                ctx.send_to_others(Propose(7));
            } else {
                ctx.set_timer(SimDuration::from_millis(10), TIMEOUT);
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Propose>, _: ProcessId, m: Propose) {
            if !self.decided {
                self.decided = true;
                ctx.observe(obs::DECIDE, Payload::U64Pair(m.0, 1));
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, Propose>, _: TimerTag) {
            if !self.decided {
                self.decided = true;
                ctx.observe(obs::DECIDE, Payload::U64Pair(ctx.me().0 as u64, 1));
            }
        }
    }

    fn race_world(n: usize) -> Box<dyn SchedWorld> {
        let net = NetworkConfig::new(n)
            .with_default(LinkModel::reliable_const(SimDuration::from_millis(1)));
        Box::new(
            WorldBuilder::new(net)
                .track_state(true)
                .build(|_, _| RaceDecide { decided: false }),
        )
    }

    fn race_target(n: usize, properties: Vec<&'static str>) -> McTarget {
        McTarget {
            name: "race-decide".into(),
            n,
            horizon: Time::from_millis(20),
            detector: fd_chaos::DetectorKind::Heartbeat,
            properties,
            factory: Box::new(move || race_world(n)),
        }
    }

    use fd_sim::SchedWorld;

    #[test]
    fn first_branch_is_the_canonical_schedule() {
        // Branch zero of the exploration (empty script) must be
        // byte-identical to the plain `run_until_time` schedule —
        // the wheel's (time, seq) order is the canonical schedule.
        let target = race_target(3, vec![]);
        let cfg = McConfig::default();
        let exec = run_one(&target, &cfg, &[], &[]);

        let mut plain = race_world(3);
        let mut canon = fd_sim::CanonicalScheduler;
        plain.run_scheduled_until(Time::from_millis(20), &mut canon);
        let (trace, _) = plain.take_results();
        assert_eq!(exec.trace_digest, trace.digest());

        let net = NetworkConfig::new(3)
            .with_default(LinkModel::reliable_const(SimDuration::from_millis(1)));
        let mut wheel = WorldBuilder::new(net).build(|_, _| RaceDecide { decided: false });
        wheel.run_until_time(Time::from_millis(20));
        let (wheel_trace, _) = wheel.take_results();
        assert_eq!(exec.trace_digest, wheel_trace.digest());
    }

    #[test]
    fn agreement_holds_without_forced_losses() {
        let target = race_target(3, vec![fd_obs::keys::CONSENSUS_AGREEMENT]);
        let report = explore(&target, &McConfig::default());
        assert!(report.complete, "tiny space must be exhausted");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.stats.runs >= 2, "delivery order must be explored");
        assert_eq!(report.stats.depth_capped_runs, 0);
    }

    #[test]
    fn a_forced_loss_breaks_agreement_and_shrinks_to_one_drop() {
        let target = race_target(3, vec![fd_obs::keys::CONSENSUS_AGREEMENT]);
        let cfg = McConfig {
            drops: 1,
            ..McConfig::default()
        };
        let report = explore(&target, &cfg);
        assert!(report.complete);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        let v = &report.violations[0];
        assert_eq!(v.property, fd_obs::keys::CONSENSUS_AGREEMENT);
        // The shrunk witness is minimal: exactly one choice, a drop.
        assert_eq!(v.witness.choices.len(), 1, "{:?}", v.witness.choices);
        assert!(v.witness.choices[0].is_drop());
        assert!(v.witness.plan.events.is_empty(), "no crashes needed");
    }

    #[test]
    fn witnesses_replay_byte_identically() {
        let target = race_target(3, vec![fd_obs::keys::CONSENSUS_AGREEMENT]);
        let cfg = McConfig {
            drops: 1,
            ..McConfig::default()
        };
        let report = explore(&target, &cfg);
        let w = &report.violations[0].witness;

        let once = replay_witness(&target, &cfg, w);
        let twice = replay_witness(&target, &cfg, w);
        assert!(once.reproduced, "replay must hit the recorded digest");
        assert!(once.violated);
        assert_eq!(once.trace_digest, twice.trace_digest);

        // And the JSON round-trip preserves the witness exactly.
        let back = Witness::from_json(&w.to_json()).unwrap();
        assert_eq!(back.choices, w.choices);
        assert_eq!(back.trace_digest, w.trace_digest);
        assert!(replay_witness(&target, &cfg, &back).reproduced);
    }

    #[test]
    fn por_and_dedup_preserve_violations_and_final_states() {
        for drops in [0usize, 1] {
            let target = race_target(3, vec![fd_obs::keys::CONSENSUS_AGREEMENT]);
            let base = McConfig {
                drops,
                por: false,
                dedup: false,
                ..McConfig::default()
            };
            let full = explore(&target, &base);
            assert!(full.complete);

            for (por, dedup) in [(true, false), (false, true), (true, true)] {
                let cfg = McConfig {
                    por,
                    dedup,
                    ..base.clone()
                };
                let pruned = explore(&target, &cfg);
                assert!(pruned.complete);
                let props = |r: &McReport| {
                    r.violations
                        .iter()
                        .map(|v| v.property.clone())
                        .collect::<std::collections::BTreeSet<_>>()
                };
                assert_eq!(props(&full), props(&pruned), "por={por} dedup={dedup}");
                assert_eq!(
                    full.final_digests, pruned.final_digests,
                    "por={por} dedup={dedup} drops={drops}"
                );
                assert!(pruned.stats.runs <= full.stats.runs);
            }
        }
    }

    #[test]
    fn por_actually_reduces_the_search() {
        // n = 4 puts three same-instant deliveries (and later three
        // timers) in one batch — with only two, every post-choice
        // remainder is a single-option non-choice and sleep sets never
        // get to prune anything.
        let target = race_target(4, vec![]);
        let on = explore(&target, &McConfig::default());
        let off = explore(
            &target,
            &McConfig {
                por: false,
                dedup: false,
                ..McConfig::default()
            },
        );
        assert!(
            on.stats.runs < off.stats.runs,
            "POR must prune: {} vs {}",
            on.stats.runs,
            off.stats.runs
        );
        assert!(on.stats.sleep_skips > 0);
    }

    #[test]
    fn crash_schedules_enumerate_the_grid() {
        let cfg = McConfig {
            crashes: 1,
            crash_window: Time::from_millis(50),
            crash_grid: SimDuration::from_millis(25),
            ..McConfig::default()
        };
        let scheds = crash_schedules(3, &cfg);
        // No-crash + 3 victims × {0, 25, 50}ms.
        assert_eq!(scheds.len(), 1 + 3 * 3);
        assert!(scheds[0].is_empty());

        let two = McConfig {
            crashes: 2,
            ..cfg.clone()
        };
        let scheds2 = crash_schedules(3, &two);
        // Adds C(3,2)=3 ordered victim pairs × 3×3 time assignments.
        assert_eq!(scheds2.len(), 1 + 3 * 3 + 3 * 9);
    }

    #[test]
    fn crashes_are_explored_and_reported_in_witness_plans() {
        // With a crash budget, the explorer must consider crashing the
        // proposer before its sends are delivered... but crashes only
        // take effect at whole instants, and p0's sends happen in
        // on_start at t=0 with delivery at 1ms. A crash of p1 or p2 at
        // t=0 silences that process: its messages (none) and timers die
        // with it, but the *other* undecided process still decides 7 —
        // agreement (vacuously over one decider) holds. Termination is
        // the property a crash visibly changes; here we just assert the
        // schedules are enumerated and runs multiply.
        let target = race_target(3, vec![fd_obs::keys::CONSENSUS_AGREEMENT]);
        let cfg = McConfig {
            crashes: 1,
            crash_window: Time::from_millis(10),
            crash_grid: SimDuration::from_millis(5),
            ..McConfig::default()
        };
        let report = explore(&target, &cfg);
        assert!(report.complete);
        assert_eq!(report.stats.schedules, 1 + 3 * 3);
        assert!(report.violations.is_empty());
    }

    #[test]
    fn max_runs_truncates_instead_of_hanging() {
        let target = race_target(3, vec![]);
        let cfg = McConfig {
            drops: 2,
            max_runs: 3,
            ..McConfig::default()
        };
        let report = explore(&target, &cfg);
        assert!(!report.complete);
        assert!(report.stats.truncated);
        assert!(report.stats.runs <= 3);
    }
}
