//! Choice traces and their deterministic replay.
//!
//! An exploration run is identified by its *choice trace*: the sequence
//! of decisions taken at the recorded choice points, in order. The
//! [`Replayer`] scheduler plays a script of such choices and then falls
//! back to the canonical `(time, seq)` order, recording every genuine
//! choice point it passes — which is exactly what the DFS driver needs
//! to enumerate the siblings of the run it just executed. Replaying the
//! same script over the same target world is byte-identical: same trace
//! digest, same metrics, same violations.

use fd_sim::{ChoicePoint, ProcessId, SchedChoice, Scheduler, Time};
use serde::{Deserialize, Serialize};

/// One serializable decision at a recorded choice point. Indices refer
/// to the canonical `(time, seq)` order of the enabled set at that
/// point, so a choice trace is meaningful only relative to the world
/// and the choices before it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Choice {
    /// Fire the `i`-th enabled event (index 0 is the canonical pick).
    Event(usize),
    /// Drop the `i`-th enabled event — a forced link loss; the event
    /// must be a message delivery.
    Drop(usize),
}

impl Choice {
    /// Whether this choice is a forced message loss.
    pub fn is_drop(self) -> bool {
        matches!(self, Choice::Drop(_))
    }

    /// The kernel-facing form of this choice.
    pub fn to_sched(self) -> SchedChoice {
        match self {
            Choice::Event(i) => SchedChoice::Event(i),
            Choice::Drop(i) => SchedChoice::Drop(i),
        }
    }
}

/// One explorable option at a recorded choice point, with the
/// content digest and footprint the DFS keys its sleep sets on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptionRec {
    /// The decision this option stands for.
    pub choice: Choice,
    /// Content digest of the underlying event (stable across
    /// interleavings, unlike the kernel's seq numbers).
    pub key: u64,
    /// The single process the option mutates, if any — `None` for
    /// crashes and interventions, which conservatively depend on
    /// everything.
    pub target: Option<ProcessId>,
}

/// A recorded choice point: where the run was, what it could have done.
#[derive(Debug, Clone)]
pub struct CpRecord {
    /// The instant being scheduled.
    pub now: Time,
    /// The world's state digest entering the choice point (present when
    /// the target world was built with `track_state(true)`).
    pub digest: Option<u64>,
    /// Forced losses already spent entering this choice point. Part of
    /// the visited-set key: the digest captures the *world*, but the
    /// drop budget is scheduler state — two visits to the same digest
    /// with different remaining budgets do not cover each other.
    pub drops_used: usize,
    /// Every explorable option, canonical event picks first (index 0 is
    /// the canonical choice), then in-budget drops.
    pub options: Vec<OptionRec>,
}

/// A [`Scheduler`] that plays a choice script, then canonical order.
///
/// Only *genuine* choice points — more than one in-budget option — are
/// recorded and consume script entries; single-option calls auto-play
/// the canonical event so that scripts stay stable as budgets change.
/// Once `depth` choice points have been recorded, the rest of the run
/// is canonical (and [`Replayer::depth_capped`] is set, so the driver
/// knows the state space was truncated rather than exhausted).
#[derive(Debug)]
pub struct Replayer<'a> {
    script: &'a [Choice],
    pos: usize,
    depth: usize,
    drop_budget: usize,
    drops_used: usize,
    /// Every recorded choice point, in execution order.
    pub log: Vec<CpRecord>,
    /// Set when a scripted choice was invalid for the enabled set it
    /// met (possible while shrinking, never during exploration); the
    /// run continued canonically from there.
    pub diverged: bool,
    /// Set when a genuine choice point was passed canonically because
    /// the depth budget was exhausted.
    pub depth_capped: bool,
}

impl<'a> Replayer<'a> {
    /// A replayer for `script` under the given depth and drop budgets.
    pub fn new(script: &'a [Choice], depth: usize, drop_budget: usize) -> Replayer<'a> {
        Replayer {
            script,
            pos: 0,
            depth,
            drop_budget,
            drops_used: 0,
            log: Vec::new(),
            diverged: false,
            depth_capped: false,
        }
    }

    fn options(&self, cp: &ChoicePoint<'_>) -> Vec<OptionRec> {
        let mut opts = Vec::with_capacity(cp.enabled.len() * 2);
        for (i, ev) in cp.enabled.iter().enumerate() {
            opts.push(OptionRec {
                choice: Choice::Event(i),
                key: ev.key,
                target: ev.target(),
            });
        }
        if self.drops_used < self.drop_budget {
            for (i, ev) in cp.enabled.iter().enumerate() {
                if ev.is_deliver() {
                    opts.push(OptionRec {
                        choice: Choice::Drop(i),
                        key: ev.key,
                        target: ev.target(),
                    });
                }
            }
        }
        opts
    }
}

impl Scheduler for Replayer<'_> {
    fn choose(&mut self, cp: &ChoicePoint<'_>) -> SchedChoice {
        let opts = self.options(cp);
        if opts.len() <= 1 {
            return SchedChoice::Event(0);
        }
        if self.log.len() >= self.depth {
            self.depth_capped = true;
            return SchedChoice::Event(0);
        }
        let choice = if self.pos < self.script.len() {
            let c = self.script[self.pos];
            self.pos += 1;
            if opts.iter().any(|o| o.choice == c) {
                c
            } else {
                self.diverged = true;
                Choice::Event(0)
            }
        } else {
            Choice::Event(0)
        };
        self.log.push(CpRecord {
            now: cp.now,
            digest: cp.state_digest,
            drops_used: self.drops_used,
            options: opts,
        });
        if choice.is_drop() {
            self.drops_used += 1;
        }
        choice.to_sched()
    }
}
