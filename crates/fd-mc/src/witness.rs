//! Replayable violation witnesses and their shrinker.
//!
//! A witness pins down one violating execution completely: the crash
//! schedule (as a `ChaosPlan`, the same artifact the campaign tooling
//! reads), the choice trace, and the digest of the trace it produces.
//! Replay is byte-identical — [`replay_witness`] re-executes the run
//! through the same [`run_one`] path exploration used and must
//! reproduce the recorded trace digest exactly.
//!
//! Witnesses are shrunk greedily before being reported: drop crash
//! events, truncate the choice suffix, then delete individual choices
//! (forced losses last-to-first first, since a shorter fault script is
//! a more legible counterexample), keeping any reduction that still
//! violates the same property.

use crate::explore::{run_one, Exec, McConfig, McTarget};
use crate::replay::Choice;
use fd_chaos::{ChaosKind, ChaosPlan};
use fd_sim::{ProcessId, Time};
use serde::{Deserialize, Serialize};

/// A self-contained, replayable counterexample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Witness {
    /// The target the violation was found on.
    pub target: String,
    /// Process count.
    pub n: usize,
    /// Run horizon.
    pub horizon: Time,
    /// The crash schedule as a campaign-readable chaos plan.
    pub plan: ChaosPlan,
    /// The choice trace (canonical order after the last entry).
    pub choices: Vec<Choice>,
    /// The violated property (a `NAMED_CHECKS` name).
    pub property: String,
    /// Human-readable failure detail from the violating run.
    pub detail: String,
    /// FNV digest of the violating run's trace — replay must reproduce
    /// this exactly.
    pub trace_digest: u64,
}

impl Witness {
    /// Assemble a witness from a shrunk violating execution.
    pub fn new(
        target: &McTarget,
        schedule: &[(ProcessId, Time)],
        choices: Vec<Choice>,
        property: &str,
        exec: &Exec,
    ) -> Witness {
        let mut plan = ChaosPlan::new(target.n, target.detector, target.horizon);
        for &(pid, at) in schedule {
            plan = plan.push(at, ChaosKind::Crash { pid });
        }
        Witness {
            target: target.name.clone(),
            n: target.n,
            horizon: target.horizon,
            plan,
            choices,
            property: property.to_string(),
            detail: exec
                .violations
                .iter()
                .find(|f| f.check == property)
                .map(|f| f.violation.detail.clone())
                .unwrap_or_default(),
            trace_digest: exec.trace_digest,
        }
    }

    /// The witness's crash schedule, extracted from its plan.
    pub fn crash_schedule(&self) -> Vec<(ProcessId, Time)> {
        self.plan
            .events
            .iter()
            .filter_map(|e| match e.kind {
                ChaosKind::Crash { pid } => Some((pid, e.at)),
                _ => None,
            })
            .collect()
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("witness serializes")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Witness, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// The outcome of replaying a witness.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The replay's trace digest (must equal the witness's).
    pub trace_digest: u64,
    /// True when the replay reproduced the recorded trace digest.
    pub reproduced: bool,
    /// True when the replay violates the witness's property.
    pub violated: bool,
    /// Detail of the reproduced violation, if any.
    pub detail: Option<String>,
}

/// Re-execute a witness against its target. Byte-identical by
/// construction: same factory, same crash schedule, same choices, same
/// execution path as exploration.
pub fn replay_witness(target: &McTarget, cfg: &McConfig, w: &Witness) -> ReplayOutcome {
    let exec = run_one(target, cfg, &w.crash_schedule(), &w.choices);
    let hit = exec.violations.iter().find(|f| f.check == w.property);
    ReplayOutcome {
        trace_digest: exec.trace_digest,
        reproduced: exec.trace_digest == w.trace_digest,
        violated: hit.is_some(),
        detail: hit.map(|f| f.violation.detail.clone()),
    }
}

/// Greedily shrink a violating `(crash schedule, choice trace)` pair,
/// preserving a violation of `property`. Returns the shrunk pair and
/// its execution. Every candidate costs one run, counted into
/// `shrink_runs`.
pub fn shrink_witness(
    target: &McTarget,
    cfg: &McConfig,
    mut schedule: Vec<(ProcessId, Time)>,
    mut choices: Vec<Choice>,
    property: &str,
    shrink_runs: &mut usize,
) -> (Vec<(ProcessId, Time)>, Vec<Choice>, Exec) {
    let fails =
        |sched: &[(ProcessId, Time)], script: &[Choice], runs: &mut usize| -> Option<Exec> {
            *runs += 1;
            let exec = run_one(target, cfg, sched, script);
            exec.violations
                .iter()
                .any(|f| f.check == property)
                .then_some(exec)
        };

    loop {
        let mut improved = false;

        // 1. Remove crash events, one at a time.
        let mut i = 0;
        while i < schedule.len() {
            let mut cand = schedule.clone();
            cand.remove(i);
            if fails(&cand, &choices, shrink_runs).is_some() {
                schedule = cand;
                improved = true;
            } else {
                i += 1;
            }
        }

        // 2. Truncate the choice suffix aggressively (halving), then
        // one entry at a time.
        while !choices.is_empty() {
            let keep = choices.len() / 2;
            if fails(&schedule, &choices[..keep], shrink_runs).is_some() {
                choices.truncate(keep);
                improved = true;
            } else {
                break;
            }
        }
        while !choices.is_empty()
            && fails(&schedule, &choices[..choices.len() - 1], shrink_runs).is_some()
        {
            choices.pop();
            improved = true;
        }

        // 3. Delete interior choices, forced losses first (a witness
        // without gratuitous faults is easier to read). Deleting shifts
        // later choices onto different choice points; the replayer
        // falls back to canonical order when a shifted choice no longer
        // fits, and the candidate only survives if it still violates.
        for drops_only in [true, false] {
            let mut i = choices.len();
            while i > 0 {
                i -= 1;
                if drops_only && !choices[i].is_drop() {
                    continue;
                }
                let mut cand = choices.clone();
                cand.remove(i);
                if fails(&schedule, &cand, shrink_runs).is_some() {
                    choices = cand;
                    improved = true;
                }
            }
        }

        if !improved {
            break;
        }
    }

    let exec = run_one(target, cfg, &schedule, &choices);
    *shrink_runs += 1;
    (schedule, choices, exec)
}
