//! The one `unsafe` island in the workspace: a counting global
//! allocator. Everything else builds under `#![forbid(unsafe_code)]`;
//! this module is the single scoped `#[allow(unsafe_code)]` exception
//! (fd-lint rule UH001 pins the allowlist to this file).

use std::sync::atomic::{AtomicU64, Ordering};

/// A [`GlobalAlloc`](std::alloc::GlobalAlloc) wrapper over the system
/// allocator that counts heap allocations.
///
/// Binaries that want allocation telemetry (the benchmark runners)
/// install it once:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: fd_obs::CountingAllocator = fd_obs::CountingAllocator;
/// ```
///
/// and read deltas of [`CountingAllocator::count`] around the region of
/// interest. The counter is a single relaxed atomic increment per
/// `alloc`/`realloc`/`alloc_zeroed` call — cheap enough to leave in
/// release benchmark builds — and stays at zero in binaries that never
/// install the allocator, which is how callers can tell whether a
/// reading is meaningful (see [`CountingAllocator::is_installed`]).
pub struct CountingAllocator;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method defers to `System`; the only addition is a
// relaxed counter bump, which has no effect on the returned memory.
unsafe impl std::alloc::GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        std::alloc::System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        std::alloc::System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        std::alloc::System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        std::alloc::System.alloc_zeroed(layout)
    }
}

impl CountingAllocator {
    /// Total allocation calls observed since process start (zero unless
    /// the allocator is installed as `#[global_allocator]`).
    pub fn count() -> u64 {
        ALLOC_COUNT.load(Ordering::Relaxed)
    }

    /// Whether the counting allocator is actually the global allocator,
    /// probed by making an allocation and checking the counter moved.
    pub fn is_installed() -> bool {
        let before = Self::count();
        let probe: Vec<u8> = Vec::with_capacity(1);
        std::hint::black_box(&probe);
        Self::count() != before
    }
}
