//! The generated observation-key registry — the single source of truth
//! for every stringly-typed key the workspace emits or consumes.
//!
//! A typo'd key makes a monitor silently vacuous: the emitter writes
//! `fd.weak_completeness`, the checker greps for `fd.weak_completness`,
//! and every seed "passes" because the property was never evaluated.
//! PR 6's round-wedge class was exactly this failure mode one layer
//! down (a silently dropped message instead of a silently missed key).
//! This module closes the gap: the [`obs_keys!`] macro generates one
//! `pub const` per key *and* the [`ALL`] table the `fd-lint` OBS001 /
//! OBS002 rules check against, so "key exists", "key is emitted", and
//! "key is consumed" are machine-checked at build time.
//!
//! Conventions:
//!
//! - Const names are the key with `.` → `_`, upper-cased
//!   (`"sim.events"` → [`SIM_EVENTS`]); fd-lint relies on this to map
//!   identifier uses back to registry entries across re-exports.
//! - Raw key literals outside this file are an OBS001 finding in
//!   non-test code; reference the const (directly or through a
//!   re-exporting convenience module such as `fd_sim::chaos` or
//!   `fd_core::obs`) instead.
//! - Per-process runtime keys (`rt.p<i>.send_ns`, …) are parameterized;
//!   build them with [`rt_send_ns`] and friends rather than ad-hoc
//!   `format!` calls.

/// What role a registered key plays — this decides which cross-file
/// consistency rules `fd-lint` applies to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyCategory {
    /// A `Registry` counter/gauge/histogram name. Must be both emitted
    /// and consumed somewhere in the workspace (OBS002).
    Metric,
    /// A trace observation tag (`Context::observe` /
    /// `World::annotate`). Must be both emitted and consumed (OBS002).
    Obs,
    /// A named property check (`run_named_check`) or monitor name.
    /// Consumed by the checker tables; has no single emit site, so
    /// OBS002's emitter rule does not apply.
    Check,
    /// A `SimMessage::kind()` label. Aggregated generically by the
    /// metrics layer; exempt from OBS002.
    Kind,
}

impl KeyCategory {
    /// Lowercase label used in reports and the graph dump.
    pub fn label(self) -> &'static str {
        match self {
            KeyCategory::Metric => "metric",
            KeyCategory::Obs => "obs",
            KeyCategory::Check => "check",
            KeyCategory::Kind => "kind",
        }
    }
}

/// One generated registry row: `(const_name, key, category)`.
pub type KeyEntry = (&'static str, &'static str, KeyCategory);

macro_rules! obs_keys {
    ($( $(#[$doc:meta])* $cat:ident $name:ident = $key:literal; )+) => {
        $( $(#[$doc])* pub const $name: &str = $key; )+

        /// Every registered key, in declaration order.
        pub const ALL: &[KeyEntry] = &[
            $( (stringify!($name), $key, KeyCategory::$cat), )+
        ];
    };
}

obs_keys! {
    // ── Kernel metrics ─────────────────────────────────────────────
    /// Counter: events dispatched by the kernel loop.
    Metric SIM_EVENTS = "sim.events";
    /// Gauge (high-water mark): event-queue depth.
    Metric SIM_QUEUE_DEPTH_HWM = "sim.queue_depth_hwm";
    /// Histogram: sampled actor-callback latency, nanoseconds.
    Metric SIM_CALLBACK_NS = "sim.callback_ns";
    /// Counter: messages dropped by the installed link mangler.
    Metric CHAOS_MSGS_DROPPED = "chaos.msgs_dropped";
    /// Counter: messages duplicated by the installed link mangler.
    Metric CHAOS_MSGS_DUPLICATED = "chaos.msgs_duplicated";
    /// Counter: messages delay-reordered by the installed link mangler.
    Metric CHAOS_MSGS_REORDERED = "chaos.msgs_reordered";
    /// Gauge (high-water mark): concurrently open partitions.
    Metric CHAOS_PARTITIONS_ACTIVE = "chaos.partitions_active";
    /// Counter: shrink steps that stuck (`ecfd campaign --shrink`).
    Metric CAMPAIGN_SHRINK_STEPS = "campaign.shrink_steps";
    /// Counter: shrink candidates attempted (`ecfd campaign --shrink`).
    Metric CAMPAIGN_SHRINK_ATTEMPTS = "campaign.shrink_attempts";

    // ── Detector / consensus observation tags ──────────────────────
    /// Suspect-set change: payload `Pids` with the new set.
    Obs FD_SUSPECTS = "fd.suspects";
    /// Trusted-process change: payload `Pid` with the new leader.
    Obs FD_TRUSTED = "fd.trusted";
    /// Consensus proposal: payload `U64` with the value.
    Obs CONSENSUS_PROPOSE = "consensus.propose";
    /// Consensus decision: payload `U64Pair` (value, round).
    Obs CONSENSUS_DECIDE = "consensus.decide";
    /// Multi-instance replica proposed `U64Pair(slot, command)`.
    Obs MULTI_PROPOSE = "multi.propose";
    /// A command was appended to the replicated log:
    /// `U64Pair(slot, command)`.
    Obs MULTI_APPEND = "multi.append";
    /// An amplified ◇P suspect-set change (distinct from the inner ◇C
    /// detector's `fd.suspects`): payload `Pids`.
    Obs EP_SUSPECTS_OUT = "ep.suspects.out";
    /// The weak→strong amplifier's output suspect set: payload `Pids`.
    Obs W2S_SUSPECTS_OUT = "w2s.suspects.out";
    /// Quiescent channel delivered a payload: `U64Pair(seq, payload)`.
    Obs QC_DELIVERED = "qc.delivered";

    // ── Chaos schedule annotation tags ─────────────────────────────
    /// An intervention cut one or more links.
    Obs CHAOS_PARTITION = "chaos.partition";
    /// An intervention restored previously cut links.
    Obs CHAOS_HEAL = "chaos.heal";
    /// An intervention installed a link mangler.
    Obs CHAOS_MANGLE = "chaos.mangle";
    /// An intervention removed the installed link mangler.
    Obs CHAOS_UNMANGLE = "chaos.unmangle";
    /// The scenario-chosen global stabilization time.
    Obs CHAOS_GST = "chaos.gst";
    /// A scheduled crash intervention fired.
    Obs CHAOS_CRASH = "chaos.crash";
    /// A warm restart of a previously crashed process.
    Obs CHAOS_RESTART = "chaos.restart";
    /// Which detector class the scenario expects after the faults
    /// (payload: index into `fd-core`'s class list).
    Obs CHAOS_EXPECT_CLASS = "chaos.expect_class";

    // ── KV serving-stack observation tags ──────────────────────────
    /// A client op arrived at its replica: `U64Pair(uid, cmd)`.
    Obs KV_SUBMIT = "kv.submit";
    /// A slot was applied to the store: `U64Pair(slot, digest)`.
    Obs KV_APPLY = "kv.apply";
    /// An op submitted here is decided *and* durable: `U64Pair(uid, slot)`.
    Obs KV_COMMIT = "kv.commit";
    /// Crash recovery finished its local WAL replay:
    /// `U64Pair(records_replayed, applied_after_replay)`. Doubles as the
    /// restart catch-up monitor's name.
    Obs KV_RECOVERY = "kv.recovery";
    /// Catch-up reached a peer's frontier: `U64Pair(applied, fetched)`.
    Obs KV_SYNC_DONE = "kv.sync_done";
    /// An in-flight ack was abandoned because an adopted snapshot hid
    /// its slot's decision: `U64Pair(uid, proposed_slot)`.
    Obs KV_ABANDON = "kv.abandon";

    // ── Named property checks and monitors ─────────────────────────
    /// Every crashed process is eventually suspected by every correct one.
    Check FD_STRONG_COMPLETENESS = "fd.strong_completeness";
    /// Every crashed process is eventually suspected by some correct one.
    Check FD_WEAK_COMPLETENESS = "fd.weak_completeness";
    /// Eventually no correct process is suspected by any correct one.
    Check FD_EVENTUAL_STRONG_ACCURACY = "fd.eventual_strong_accuracy";
    /// Eventually some correct process is never suspected.
    Check FD_EVENTUAL_WEAK_ACCURACY = "fd.eventual_weak_accuracy";
    /// Eventually all correct processes trust the same correct process.
    Check FD_OMEGA = "fd.omega";
    /// The trusted process is never in the suspect set (◇C consistency).
    Check FD_TRUSTED_NOT_SUSPECTED = "fd.trusted_not_suspected";
    /// The paper's ◇C class: Ω plus trusted-not-suspected.
    Check FD_EVENTUALLY_CONSISTENT = "fd.eventually_consistent";
    /// No two processes decide differently.
    Check CONSENSUS_AGREEMENT = "consensus.agreement";
    /// Every decided value was proposed.
    Check CONSENSUS_VALIDITY = "consensus.validity";
    /// No process decides twice.
    Check CONSENSUS_INTEGRITY = "consensus.integrity";
    /// Every correct process eventually decides.
    Check CONSENSUS_TERMINATION = "consensus.termination";
    /// Agreement + validity + integrity.
    Check CONSENSUS_SAFETY = "consensus.safety";
    /// All four consensus properties.
    Check CONSENSUS_ALL = "consensus.all";
    /// The run upholds ◇P after the chaos schedule's quiet point.
    Check CHAOS_EP_AFTER_FAULTS = "chaos.ep_after_faults";
    /// The run upholds ◇S after the chaos schedule's quiet point.
    Check CHAOS_ES_AFTER_FAULTS = "chaos.es_after_faults";
    /// The run upholds Ω after the chaos schedule's quiet point.
    Check CHAOS_OMEGA_AFTER_FAULTS = "chaos.omega_after_faults";
    /// The run upholds the class its `chaos.expect_class` annotation names.
    Check CHAOS_CLASS_AFTER_FAULTS = "chaos.class_after_faults";
    /// No two processes append different commands to the same slot.
    Check MULTI_LOG_AGREEMENT = "multi.log_agreement";
    /// All replicas applied byte-identical log prefixes.
    Check KV_LOG_AGREEMENT = "kv.log_agreement";
    /// Every survivor-submitted op committed (or visibly abandoned).
    Check KV_COMMITTED = "kv.committed";

    // ── Message-kind labels (metrics aggregation) ──────────────────
    /// EC round protocol: coordinator announcement.
    Kind EC_COORDINATOR = "ec.coordinator";
    /// EC round protocol: estimate carrying a value.
    Kind EC_ESTIMATE = "ec.estimate";
    /// EC round protocol: null estimate (not yet proposed).
    Kind EC_NULL_ESTIMATE = "ec.null_estimate";
    /// EC round protocol: proposition carrying a value.
    Kind EC_PROPOSITION = "ec.proposition";
    /// EC round protocol: null proposition (coordinator gave up the round).
    Kind EC_NULL_PROPOSITION = "ec.null_proposition";
    /// EC round protocol: acknowledgement.
    Kind EC_ACK = "ec.ack";
    /// EC round protocol: negative acknowledgement.
    Kind EC_NACK = "ec.nack";
    /// Merged-EC variant: estimate.
    Kind ECM_ESTIMATE = "ecm.estimate";
    /// Merged-EC variant: null estimate.
    Kind ECM_NULL_ESTIMATE = "ecm.null_estimate";
    /// Merged-EC variant: proposition.
    Kind ECM_PROPOSITION = "ecm.proposition";
    /// Merged-EC variant: null proposition.
    Kind ECM_NULL_PROPOSITION = "ecm.null_proposition";
    /// Merged-EC variant: acknowledgement.
    Kind ECM_ACK = "ecm.ack";
    /// Merged-EC variant: negative acknowledgement.
    Kind ECM_NACK = "ecm.nack";
    /// Chandra–Toueg: estimate.
    Kind CT_ESTIMATE = "ct.estimate";
    /// Chandra–Toueg: proposition.
    Kind CT_PROPOSITION = "ct.proposition";
    /// Chandra–Toueg: acknowledgement.
    Kind CT_ACK = "ct.ack";
    /// Chandra–Toueg: negative acknowledgement.
    Kind CT_NACK = "ct.nack";
    /// Mostefaoui–Raynal: phase-1 broadcast.
    Kind MR_PHASE1 = "mr.phase1";
    /// Mostefaoui–Raynal: phase-2 broadcast.
    Kind MR_PHASE2 = "mr.phase2";
    /// Mostefaoui–Raynal: phase-3 broadcast.
    Kind MR_PHASE3 = "mr.phase3";
    /// Paxos: phase-1a prepare.
    Kind PAXOS_PREPARE = "paxos.prepare";
    /// Paxos: phase-1b promise.
    Kind PAXOS_PROMISE = "paxos.promise";
    /// Paxos: phase-2a accept request.
    Kind PAXOS_ACCEPT = "paxos.accept";
    /// Paxos: phase-2b accepted.
    Kind PAXOS_ACCEPTED = "paxos.accepted";
    /// Paxos: rejection (higher ballot promised).
    Kind PAXOS_REJECT = "paxos.reject";
    /// Heartbeat detector: I-am-alive beat.
    Kind HB_ALIVE = "hb.alive";
    /// Ring detector: poll of the monitored predecessor segment.
    Kind RING_POLL = "ring.poll";
    /// Ring detector: poll reply.
    Kind RING_REPLY = "ring.reply";
    /// vCube detector: cluster test probe.
    Kind VC_TEST = "vc.test";
    /// vCube detector: test acknowledgement (with piggybacked news).
    Kind VC_ACK = "vc.ack";
    /// Quiescent channel: payload (re)transmission.
    Kind QC_DATA = "qc.data";
    /// Quiescent channel: acknowledgement.
    Kind QC_ACK = "qc.ack";
    /// Ω gossip reduction: candidate-set gossip.
    Kind OMEGA_GOSSIP = "omega.gossip";
    /// Reliable broadcast envelope.
    Kind RB_MSG = "rb.msg";
    /// Uniform reliable broadcast envelope.
    Kind URB_MSG = "urb.msg";
    /// Fused detector: leader-list share.
    Kind FUSED_LEADERLIST = "fused.leaderlist";
    /// Fused detector: alive beat.
    Kind FUSED_ALIVE = "fused.alive";
    /// Leader-election wrapper: alive beat.
    Kind LEADER_ALIVE = "leader.alive";
    /// Stable-leader Ω detector: alive beat.
    Kind STABLE_ALIVE = "stable.alive";
    /// EC→◇P amplifier: alive beat.
    Kind EP_ALIVE = "ep.alive";
    /// EC→◇P amplifier: suspect-set share.
    Kind EP_SUSPECTS = "ep.suspects";
    /// Weak→strong amplifier: suspect-set share.
    Kind W2S_SUSPECTS = "w2s.suspects";
    /// Heartbeat-counter channel: beat.
    Kind HBC_BEAT = "hbc.beat";
    /// Blind builtin scenario: heartbeat.
    Kind BLIND_HB = "blind.hb";
    /// Multi-instance consensus: slot-open announcement.
    Kind MULTI_OPEN = "multi.open";
    /// KV catch-up: snapshot/log-tail request.
    Kind KV_SYNC_REQ = "kv.sync_req";
    /// KV catch-up: snapshot/log-tail response.
    Kind KV_SYNC_RESP = "kv.sync_resp";
}

/// Look an entry up by its key string.
pub fn lookup(key: &str) -> Option<&'static KeyEntry> {
    ALL.iter().find(|(_, k, _)| *k == key)
}

/// Per-process runtime histogram: time spent handing a message to the
/// transport, nanoseconds.
pub fn rt_send_ns(p: usize) -> String {
    format!("rt.p{p}.send_ns")
}

/// Per-process runtime histogram: send-to-deliver latency, nanoseconds.
pub fn rt_recv_latency_ns(p: usize) -> String {
    format!("rt.p{p}.recv_latency_ns")
}

/// Per-process runtime histogram: how late a timer fired past its
/// deadline, nanoseconds.
pub fn rt_timer_drift_ns(p: usize) -> String {
    format!("rt.p{p}.timer_drift_ns")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn keys_are_unique_and_well_formed() {
        let mut seen = BTreeSet::new();
        for (name, key, _) in ALL {
            assert!(seen.insert(*key), "duplicate key {key}");
            assert!(
                key.split('.').count() >= 2,
                "{key}: keys are namespace.name"
            );
            for seg in key.split('.') {
                assert!(
                    !seg.is_empty()
                        && seg
                            .chars()
                            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                    "{key}: segments are lowercase snake_case"
                );
            }
            let derived = key.replace('.', "_").to_uppercase();
            assert_eq!(
                *name, derived,
                "const name must be mechanically derived from the key"
            );
        }
    }

    #[test]
    fn const_names_are_unique() {
        let mut seen = BTreeSet::new();
        for (name, _, _) in ALL {
            assert!(seen.insert(*name), "duplicate const name {name}");
        }
    }

    #[test]
    fn lookup_finds_registered_keys_only() {
        let (name, key, cat) = lookup("sim.events").expect("registered");
        assert_eq!(
            (*name, *key, *cat),
            ("SIM_EVENTS", SIM_EVENTS, KeyCategory::Metric)
        );
        assert!(lookup("fd.weak_completness").is_none(), "typo must miss");
    }

    #[test]
    fn rt_key_helpers_follow_the_documented_shape() {
        assert_eq!(rt_send_ns(3), "rt.p3.send_ns");
        assert_eq!(rt_recv_latency_ns(0), "rt.p0.recv_latency_ns");
        assert_eq!(rt_timer_drift_ns(12), "rt.p12.timer_drift_ns");
    }
}
