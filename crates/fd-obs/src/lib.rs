//! Dependency-light structured observability for the ecfd workspace.
//!
//! The workspace needs a perf trajectory (ROADMAP: "runs as fast as the
//! hardware allows") without pulling in `metrics`/`tracing` stacks the
//! offline build cannot fetch. This crate provides the minimal vocabulary
//! the kernel, runtime and campaign layers need:
//!
//! - [`Counter`] — monotonically increasing `u64` (events processed,
//!   messages sent).
//! - [`Gauge`] — last-write-wins `u64` with a [`Gauge::record_max`]
//!   high-water-mark mode (queue depth HWM).
//! - [`Histogram`] — lock-free log₂-bucketed distribution of `u64`
//!   samples (latencies in nanoseconds), with a scoped [`Span`] guard
//!   that times a region and records the elapsed nanoseconds on drop.
//! - [`Registry`] — a named get-or-create map of the above, snapshotable
//!   to [`serde::Value`] rows and writable as JSON Lines via the
//!   workspace `serde_json` shim.
//!
//! Everything is `Arc`/atomic based so instrumented code paths pay one
//! atomic RMW per event when observability is on and a branch on an
//! `Option` when it is off. Nothing here feeds back into simulation
//! state: instrumentation reads wall clocks but never RNG streams, so
//! trace digests are byte-identical with metrics on or off (the
//! `campaign_e2e` suite asserts this).
#![warn(missing_docs)]
// The workspace-wide `forbid(unsafe_code)` contract relaxes to `deny`
// here only so the allocator module below can opt back in with a scoped
// allow; fd-lint rule UH001 keeps the exception pinned to that file.
#![deny(unsafe_code)]

/// The counting global allocator (the workspace's only `unsafe` code).
#[allow(unsafe_code)]
mod alloc;

pub mod keys;

pub use alloc::CountingAllocator;

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge with an optional high-water-mark mode.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Set the gauge to `v`.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` exceeds the current value
    /// (high-water mark).
    pub fn record_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: bucket 0 holds the value 0, bucket `k`
/// (1 ≤ k ≤ 64) holds values with bit length `k`, i.e. `[2^(k-1), 2^k)`.
const BUCKETS: usize = 65;

/// A lock-free histogram over `u64` samples with power-of-two buckets.
///
/// Designed for nanosecond latencies: exact count/sum/min/max, and
/// quantiles approximated to the upper bound of the containing log₂
/// bucket (≤2× relative error), which is plenty to spot order-of-
/// magnitude regressions without per-sample storage.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        let idx = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Start a scoped span; the elapsed wall-clock nanoseconds are
    /// recorded into this histogram when the returned guard drops.
    pub fn time(&self) -> Span<'_> {
        Span {
            hist: self,
            start: Instant::now(),
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        }
    }

    /// Largest recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0.0 if empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// log₂ bucket containing the nearest-rank sample, clamped to the
    /// exact observed max. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        // Nearest rank: the smallest k with cumulative(k) >= ceil(q*n).
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                let upper = if idx == 0 { 0 } else { (1u64 << idx) - 1 };
                return upper.min(self.max());
            }
        }
        self.max()
    }
}

/// Scoped timer guard returned by [`Histogram::time`]; records the
/// elapsed nanoseconds into the histogram on drop.
#[derive(Debug)]
pub struct Span<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos();
        self.hist.record(u64::try_from(ns).unwrap_or(u64::MAX));
    }
}

/// One named metric held by a [`Registry`].
#[derive(Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named get-or-create collection of metrics.
///
/// Handles are `Arc`s, so callers fetch them once (at setup) and update
/// them lock-free on hot paths; the registry mutex is only taken at
/// registration and snapshot time.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.lock().unwrap();
        let metric = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())));
        match metric {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Get or create the gauge named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.inner.lock().unwrap();
        let metric = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())));
        match metric {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Get or create the histogram named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.inner.lock().unwrap();
        let metric = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())));
        match metric {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Snapshot every metric as one JSON object per metric, sorted by
    /// name. Counters and gauges carry `value`; histograms carry
    /// `count`, `sum`, `min`, `max`, `mean`, and approximate `p50`,
    /// `p90`, `p99`.
    pub fn snapshot(&self) -> Vec<serde::Value> {
        let map = self.inner.lock().unwrap();
        map.iter()
            .map(|(name, metric)| {
                let mut fields = vec![
                    ("type".to_string(), serde::Value::Str(metric.kind().into())),
                    ("name".to_string(), serde::Value::Str(name.clone())),
                ];
                match metric {
                    Metric::Counter(c) => {
                        fields.push(("value".to_string(), serde::Value::U128(c.get().into())));
                    }
                    Metric::Gauge(g) => {
                        fields.push(("value".to_string(), serde::Value::U128(g.get().into())));
                    }
                    Metric::Histogram(h) => {
                        fields.extend([
                            ("count".to_string(), serde::Value::U128(h.count().into())),
                            ("sum".to_string(), serde::Value::U128(h.sum().into())),
                            ("min".to_string(), serde::Value::U128(h.min().into())),
                            ("max".to_string(), serde::Value::U128(h.max().into())),
                            ("mean".to_string(), serde::Value::F64(h.mean())),
                            (
                                "p50".to_string(),
                                serde::Value::U128(h.quantile(0.50).into()),
                            ),
                            (
                                "p90".to_string(),
                                serde::Value::U128(h.quantile(0.90).into()),
                            ),
                            (
                                "p99".to_string(),
                                serde::Value::U128(h.quantile(0.99).into()),
                            ),
                        ]);
                    }
                }
                serde::Value::Obj(fields)
            })
            .collect()
    }
}

/// Serialize `rows` as JSON Lines into `w`, one compact object per line.
pub fn write_jsonl<W: io::Write>(w: &mut W, rows: &[serde::Value]) -> io::Result<()> {
    for row in rows {
        let line = serde_json::to_string(row)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Write `rows` as a JSON Lines file at `path` (created or truncated).
pub fn write_jsonl_file(path: &Path, rows: &[serde::Value]) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    write_jsonl(&mut out, rows)?;
    out.flush()
}

/// Read a JSON Lines file back into one [`serde::Value`] per non-empty
/// line. Malformed lines surface as `InvalidData` errors naming the
/// offending line number.
pub fn read_jsonl_file(path: &Path) -> io::Result<Vec<serde::Value>> {
    let file = BufReader::new(File::open(path)?);
    let mut rows = Vec::new();
    for (lineno, line) in file.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let row: serde::Value = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 1),
            )
        })?;
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = Registry::new();
        let c = reg.counter("events");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Get-or-create returns the same underlying counter.
        reg.counter("events").inc();
        assert_eq!(c.get(), 6);

        let g = reg.gauge("depth");
        g.record_max(3);
        g.record_max(9);
        g.record_max(5);
        assert_eq!(g.get(), 9, "record_max keeps the high-water mark");
        g.set(2);
        assert_eq!(g.get(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn histogram_exact_stats_and_bucketed_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram quantile is 0");
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        // Quantile error is bounded by the log2 bucket: the true p50 over
        // {0,1,2,3,100,1000} is 2 (nearest rank 3); bucket upper bound 3.
        assert_eq!(h.quantile(0.5), 3);
        // p99 lands in the top sample's bucket, clamped to the exact max.
        assert_eq!(h.quantile(0.99), 1000);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn span_records_elapsed_nanos() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        {
            let _span = h.time();
            std::hint::black_box(());
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn snapshot_and_jsonl_roundtrip() {
        let reg = Registry::new();
        reg.counter("a.events").add(7);
        reg.gauge("b.depth").set(3);
        reg.histogram("c.lat").record(1500);
        let rows = reg.snapshot();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].field("type").as_str(), Some("counter"));
        assert_eq!(rows[0].field("name").as_str(), Some("a.events"));
        assert_eq!(rows[0].field("value").as_u64(), Some(7));
        assert_eq!(rows[2].field("count").as_u64(), Some(1));

        let dir = std::env::temp_dir().join("fd-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        write_jsonl_file(&path, &rows).unwrap();
        let back = read_jsonl_file(&path).unwrap();
        assert_eq!(back, rows);
    }
}
