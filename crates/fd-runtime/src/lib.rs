//! # fd-runtime — a threaded, wall-clock executor for the same actors
//!
//! The simulator in `fd-sim` is the measurement instrument; this crate is
//! the existence proof that the protocol code is not simulator-only. A
//! [`Runtime`] spawns one OS thread per process, connects them with
//! crossbeam channels, drives [`fd_sim::Actor`] callbacks against the
//! wall clock (timers via `recv_timeout`), and interprets the very same
//! [`fd_sim::Action`] stream the kernel does. Crash-stop failures are a
//! control message that makes a thread drop its actor and go silent.
//!
//! Message loss can be injected per send (a Bernoulli trial, matching the
//! fair-lossy link model); delays are whatever the OS scheduler provides,
//! which is exactly the "asynchronous system" reading of real hardware.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod runtime;

pub use runtime::{observations_to_trace, RtObservation, Runtime, RuntimeConfig};
