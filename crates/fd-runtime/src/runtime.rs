//! The threaded executor.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use fd_sim::{Action, Actor, Context, Payload, ProcessId, Time, TimerTag};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BinaryHeap, HashSet};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Independent probability of dropping each message (fair-lossy
    /// injection). Zero means reliable transport.
    pub loss_probability: f64,
    /// Optional artificial per-message delay, uniform in `[min, max]`.
    /// Delayed messages are parked on a dedicated delayer thread, so
    /// later messages can overtake earlier ones — the asynchronous-model
    /// reading of a real network.
    pub delay: Option<(Duration, Duration)>,
    /// Seed for the loss/randomness streams.
    pub seed: u64,
    /// Optional metrics registry. When set, every actor thread records
    /// per-thread histograms `rt.p<i>.send_ns` (time spent handing a
    /// message to the transport), `rt.p<i>.recv_latency_ns` (send-to-
    /// delivery wall latency, injected delay included), and
    /// `rt.p<i>.timer_drift_ns` (how late a timer fired past its
    /// requested deadline). Instrumentation only reads wall clocks; it
    /// never feeds back into actor behaviour.
    pub obs: Option<Arc<fd_obs::Registry>>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            loss_probability: 0.0,
            delay: None,
            seed: 0,
            obs: None,
        }
    }
}

/// Pre-resolved per-thread metric handles (see [`RuntimeConfig::obs`]).
struct RtObs {
    send_ns: Arc<fd_obs::Histogram>,
    recv_latency_ns: Arc<fd_obs::Histogram>,
    timer_drift_ns: Arc<fd_obs::Histogram>,
}

impl RtObs {
    fn new(registry: &fd_obs::Registry, me: ProcessId) -> RtObs {
        let i = me.index();
        RtObs {
            send_ns: registry.histogram(&fd_obs::keys::rt_send_ns(i)),
            recv_latency_ns: registry.histogram(&fd_obs::keys::rt_recv_latency_ns(i)),
            timer_drift_ns: registry.histogram(&fd_obs::keys::rt_timer_drift_ns(i)),
        }
    }
}

fn as_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// An observation recorded by some process (same payloads as the
/// simulator's trace observations).
#[derive(Debug, Clone)]
pub struct RtObservation {
    /// Wall-clock time since runtime start, in microseconds.
    pub at: Time,
    /// The observing process.
    pub pid: ProcessId,
    /// Observation tag.
    pub tag: &'static str,
    /// Structured payload.
    pub payload: Payload,
}

/// A boxed closure injected into an actor thread (`Runtime::interact`).
type InteractFn<A> = Box<dyn FnOnce(&mut A, &mut Context<'_, <A as Actor>::Msg>) + Send>;

enum Event<A: Actor> {
    Deliver {
        from: ProcessId,
        msg: A::Msg,
        /// When the sender handed the message to the transport; receivers
        /// with metrics on derive the send-to-delivery latency from it.
        sent: Instant,
    },
    Interact(InteractFn<A>),
    Crash,
    Shutdown,
}

struct PendingTimer {
    deadline: Instant,
    seq: u64,
    id: u64,
    tag: TimerTag,
}

impl PartialEq for PendingTimer {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for PendingTimer {}
impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by (deadline, seq).
        (other.deadline, other.seq).cmp(&(self.deadline, self.seq))
    }
}
impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A queued artificially-delayed delivery.
struct Parked<A: Actor> {
    due: Instant,
    seq: u64,
    to: usize,
    ev: Event<A>,
}

impl<A: Actor> PartialEq for Parked<A> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<A: Actor> Eq for Parked<A> {}
impl<A: Actor> Ord for Parked<A> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}
impl<A: Actor> PartialOrd for Parked<A> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The delayer thread: parks delayed deliveries and forwards them when
/// due. Dropping all `DelayerHandle` senders terminates it.
fn delayer_loop<A>(rx: Receiver<Parked<A>>, peers: Vec<Sender<Event<A>>>)
where
    A: Actor + Send,
    A::Msg: Send,
{
    let mut heap: BinaryHeap<Parked<A>> = BinaryHeap::new();
    loop {
        // Forward everything that is due.
        while let Some(top) = heap.peek() {
            if top.due > Instant::now() {
                break;
            }
            let p = heap.pop().expect("peeked");
            let _ = peers[p.to].send(p.ev);
        }
        let incoming = match heap.peek() {
            Some(top) => {
                let wait = top.due.saturating_duration_since(Instant::now());
                match rx.recv_timeout(wait) {
                    Ok(p) => Some(p),
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => None,
                }
            }
            None => rx.recv().ok(),
        };
        match incoming {
            Some(p) => heap.push(p),
            None => {
                // All senders gone: flush what is left and exit.
                while let Some(p) = heap.pop() {
                    let wait = p.due.saturating_duration_since(Instant::now());
                    std::thread::sleep(wait);
                    let _ = peers[p.to].send(p.ev);
                }
                return;
            }
        }
    }
}

/// A running mesh of actor threads.
pub struct Runtime<A: Actor> {
    senders: Vec<Sender<Event<A>>>,
    handles: Vec<JoinHandle<Option<A>>>,
    delayer: Option<JoinHandle<()>>,
    observations: Arc<Mutex<Vec<RtObservation>>>,
    start: Instant,
    n: usize,
}

impl<A> Runtime<A>
where
    A: Actor + Send,
    A::Msg: Send,
{
    /// Spawn `n` processes, each running `make(pid, n)`.
    pub fn spawn(
        n: usize,
        cfg: RuntimeConfig,
        mut make: impl FnMut(ProcessId, usize) -> A,
    ) -> Runtime<A> {
        let start = Instant::now();
        let observations = Arc::new(Mutex::new(Vec::new()));
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Event<A>>();
            senders.push(tx);
            receivers.push(rx);
        }
        // One delayer thread services all processes when delays are on.
        let (delayer, delay_tx) = if cfg.delay.is_some() {
            let (tx, rx) = unbounded::<Parked<A>>();
            let peers = senders.clone();
            (
                Some(std::thread::spawn(move || delayer_loop(rx, peers))),
                Some(tx),
            )
        } else {
            (None, None)
        };
        let mut handles = Vec::with_capacity(n);
        for (i, rx) in receivers.into_iter().enumerate() {
            let pid = ProcessId(i);
            let actor = make(pid, n);
            let peers = senders.clone();
            let obs = Arc::clone(&observations);
            let cfg = cfg.clone();
            let delay_tx = delay_tx.clone();
            handles.push(std::thread::spawn(move || {
                process_loop(pid, n, actor, rx, peers, obs, start, cfg, delay_tx)
            }));
        }
        Runtime {
            senders,
            handles,
            delayer,
            observations,
            start,
            n,
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Run a closure on a live actor (e.g. `propose`). The closure gets a
    /// full [`Context`], so it can send and arm timers.
    pub fn interact(
        &self,
        pid: ProcessId,
        f: impl FnOnce(&mut A, &mut Context<'_, A::Msg>) + Send + 'static,
    ) {
        let _ = self.senders[pid.index()].send(Event::Interact(Box::new(f)));
    }

    /// Crash a process (crash-stop: its thread goes permanently silent).
    pub fn crash(&self, pid: ProcessId) {
        let _ = self.senders[pid.index()].send(Event::Crash);
    }

    /// Sleep the calling thread while the mesh runs.
    pub fn run_for(&self, wall: Duration) {
        std::thread::sleep(wall);
    }

    /// Snapshot of all observations so far.
    pub fn observations(&self) -> Vec<RtObservation> {
        self.observations.lock().clone()
    }

    /// The last observation with `tag` by `pid`, if any.
    pub fn last_observation(&self, pid: ProcessId, tag: &str) -> Option<RtObservation> {
        self.observations
            .lock()
            .iter()
            .rev()
            .find(|o| o.pid == pid && o.tag == tag)
            .cloned()
    }

    /// Elapsed wall time since spawn, as simulator-compatible [`Time`].
    pub fn now(&self) -> Time {
        Time(self.start.elapsed().as_micros() as u64)
    }

    /// Stop every thread and return the final actors (crashed processes
    /// yield `None`).
    pub fn shutdown(self) -> Vec<Option<A>> {
        for tx in &self.senders {
            let _ = tx.send(Event::Shutdown);
        }
        let actors: Vec<Option<A>> = self
            .handles
            .into_iter()
            .map(|h| h.join().expect("actor thread panicked"))
            .collect();
        // Actor threads held the delayer senders; once they are gone, the
        // delayer drains and exits.
        if let Some(d) = self.delayer {
            let _ = d.join();
        }
        actors
    }
}

#[allow(clippy::too_many_arguments)]
fn process_loop<A>(
    me: ProcessId,
    n: usize,
    mut actor: A,
    rx: Receiver<Event<A>>,
    peers: Vec<Sender<Event<A>>>,
    observations: Arc<Mutex<Vec<RtObservation>>>,
    start: Instant,
    cfg: RuntimeConfig,
    delay_tx: Option<Sender<Parked<A>>>,
) -> Option<A>
where
    A: Actor + Send,
    A::Msg: Send,
{
    let mut rng = SmallRng::seed_from_u64(
        cfg.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(me.index() as u64),
    );
    let mut loss_rng =
        SmallRng::seed_from_u64(cfg.seed ^ (me.index() as u64).wrapping_mul(0xD134_2543_DE82_EF95));
    let mut actions: Vec<Action<A::Msg>> = Vec::new();
    let mut next_timer_id: u64 = 0;
    let mut timers: BinaryHeap<PendingTimer> = BinaryHeap::new();
    let mut timer_seq: u64 = 0;
    let mut cancelled: HashSet<u64> = HashSet::new();
    let mut crashed = false;
    let mut delay_seq: u64 = 0;

    let now = |start: Instant| Time(start.elapsed().as_micros() as u64);
    let obs = cfg.obs.as_ref().map(|registry| RtObs::new(registry, me));

    macro_rules! run_callback {
        ($cb:expr) => {{
            {
                let mut ctx = Context::for_executor(
                    me,
                    n,
                    now(start),
                    &mut rng,
                    &mut actions,
                    &mut next_timer_id,
                );
                $cb(&mut ctx);
            }
            for action in actions.drain(..) {
                match action {
                    Action::Send { to, msg } => {
                        if cfg.loss_probability > 0.0
                            && loss_rng.gen_bool(cfg.loss_probability.clamp(0.0, 1.0))
                        {
                            continue;
                        }
                        let send_started = Instant::now();
                        let ev = Event::Deliver {
                            from: me,
                            msg,
                            sent: send_started,
                        };
                        match (&delay_tx, cfg.delay) {
                            (Some(tx), Some((min, max))) => {
                                let span = max.saturating_sub(min);
                                let extra = if span.is_zero() {
                                    Duration::ZERO
                                } else {
                                    Duration::from_micros(
                                        loss_rng.gen_range(0..=span.as_micros() as u64),
                                    )
                                };
                                delay_seq += 1;
                                let _ = tx.send(Parked {
                                    due: send_started + min + extra,
                                    seq: delay_seq,
                                    to: to.index(),
                                    ev,
                                });
                            }
                            _ => {
                                let _ = peers[to.index()].send(ev);
                            }
                        }
                        if let Some(o) = &obs {
                            o.send_ns.record(as_ns(send_started.elapsed()));
                        }
                    }
                    Action::Broadcast { include_self, msg } => {
                        // Expand in identity order with the same per-destination
                        // transport, delay, and loss sampling as `Send`, so a
                        // broadcast is indistinguishable on the wire from the
                        // per-peer sends it replaces.
                        for dest in 0..n {
                            if dest == me.index() && !include_self {
                                continue;
                            }
                            if cfg.loss_probability > 0.0
                                && loss_rng.gen_bool(cfg.loss_probability.clamp(0.0, 1.0))
                            {
                                continue;
                            }
                            let send_started = Instant::now();
                            let ev = Event::Deliver {
                                from: me,
                                msg: msg.clone(),
                                sent: send_started,
                            };
                            match (&delay_tx, cfg.delay) {
                                (Some(tx), Some((min, max))) => {
                                    let span = max.saturating_sub(min);
                                    let extra = if span.is_zero() {
                                        Duration::ZERO
                                    } else {
                                        Duration::from_micros(
                                            loss_rng.gen_range(0..=span.as_micros() as u64),
                                        )
                                    };
                                    delay_seq += 1;
                                    let _ = tx.send(Parked {
                                        due: send_started + min + extra,
                                        seq: delay_seq,
                                        to: dest,
                                        ev,
                                    });
                                }
                                _ => {
                                    let _ = peers[dest].send(ev);
                                }
                            }
                            if let Some(o) = &obs {
                                o.send_ns.record(as_ns(send_started.elapsed()));
                            }
                        }
                    }
                    Action::SetTimer { id, after, tag } => {
                        timer_seq += 1;
                        timers.push(PendingTimer {
                            deadline: Instant::now() + Duration::from_micros(after.ticks()),
                            seq: timer_seq,
                            id: timer_id_raw(id),
                            tag,
                        });
                    }
                    Action::CancelTimer { id } => {
                        cancelled.insert(timer_id_raw(id));
                    }
                    Action::Observe { tag, payload } => {
                        observations.lock().push(RtObservation {
                            at: now(start),
                            pid: me,
                            tag,
                            payload,
                        });
                    }
                }
            }
        }};
    }

    run_callback!(|ctx: &mut Context<'_, A::Msg>| actor.on_start(ctx));

    loop {
        // Fire all due timers first.
        while let Some(t) = timers.peek() {
            if t.deadline > Instant::now() {
                break;
            }
            let t = timers.pop().expect("peeked");
            if cancelled.remove(&t.id) || crashed {
                continue;
            }
            if let Some(o) = &obs {
                o.timer_drift_ns
                    .record(as_ns(Instant::now().saturating_duration_since(t.deadline)));
            }
            let tag = t.tag;
            run_callback!(|ctx: &mut Context<'_, A::Msg>| actor.on_timer(ctx, tag));
        }

        let event = match timers.peek() {
            Some(t) => {
                let wait = t.deadline.saturating_duration_since(Instant::now());
                match rx.recv_timeout(wait) {
                    Ok(ev) => Some(ev),
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => None,
                }
            }
            None => rx.recv().ok(),
        };

        match event {
            Some(Event::Deliver { from, msg, sent }) => {
                if let Some(o) = &obs {
                    o.recv_latency_ns.record(as_ns(sent.elapsed()));
                }
                if !crashed {
                    run_callback!(|ctx: &mut Context<'_, A::Msg>| actor.on_message(ctx, from, msg));
                }
            }
            Some(Event::Interact(f)) => {
                if !crashed {
                    run_callback!(|ctx: &mut Context<'_, A::Msg>| f(&mut actor, ctx));
                }
            }
            Some(Event::Crash) => {
                crashed = true;
                timers.clear();
            }
            Some(Event::Shutdown) | None => break,
        }
    }
    if crashed {
        None
    } else {
        Some(actor)
    }
}

fn timer_id_raw(id: fd_sim::TimerId) -> u64 {
    id.raw()
}

/// Test-only retry for wall-clock assertions.
///
/// Real-time bounds in this module are calibrated for an otherwise idle
/// core; a loaded CI host can preempt any thread long enough to stretch a
/// single measurement past any reasonable tolerance. So the timing tests
/// (a) use bounds several times wider than the idle-core expectation and
/// (b) rerun the whole experiment up to `attempts` times, passing if any
/// one attempt lands inside the documented bound. Systematic bugs (a
/// delay that never holds messages back, a channel that takes seconds)
/// still fail every attempt.
#[cfg(test)]
fn eventually(attempts: usize, mut experiment: impl FnMut() -> Result<(), String>) {
    let mut last = String::new();
    for _ in 0..attempts {
        match experiment() {
            Ok(()) => return,
            Err(e) => last = e,
        }
    }
    panic!("failed {attempts} attempts; last: {last}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_sim::{SimDuration, SimMessage};

    /// Trivial gossip actor for smoke tests.
    struct Counter {
        heard: u64,
    }
    #[derive(Clone, Debug)]
    struct Tick;
    impl SimMessage for Tick {
        fn kind(&self) -> &'static str {
            "tick"
        }
    }
    impl Actor for Counter {
        type Msg = Tick;
        fn on_start(&mut self, ctx: &mut Context<'_, Tick>) {
            ctx.set_timer(SimDuration::from_millis(5), TimerTag::new(0, 0, 0));
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, Tick>, _from: ProcessId, _m: Tick) {
            self.heard += 1;
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, Tick>, _t: TimerTag) {
            ctx.send_to_others(Tick);
            ctx.set_timer(SimDuration::from_millis(5), TimerTag::new(0, 0, 0));
        }
    }

    #[test]
    fn threads_exchange_messages_and_timers_fire() {
        // Idle-core expectation: ~24 ticks × 2 peers in 120ms at a 5ms
        // period. Require a quarter of that so a loaded host passes, and
        // retry — see `eventually`.
        eventually(3, || {
            let rt = Runtime::spawn(3, RuntimeConfig::default(), |_, _| Counter { heard: 0 });
            rt.run_for(Duration::from_millis(120));
            let actors = rt.shutdown();
            for a in &actors {
                let heard = a.as_ref().unwrap().heard;
                if heard < 10 {
                    return Err(format!("heard only {heard} ticks in 120ms at 5ms period"));
                }
            }
            Ok(())
        });
    }

    #[test]
    fn metrics_record_send_recv_and_timer_drift() {
        let registry = Arc::new(fd_obs::Registry::new());
        let cfg = RuntimeConfig {
            obs: Some(Arc::clone(&registry)),
            ..RuntimeConfig::default()
        };
        let rt = Runtime::spawn(2, cfg, |_, _| Counter { heard: 0 });
        rt.run_for(Duration::from_millis(60));
        rt.shutdown();
        for pid in 0..2 {
            let send = registry.histogram(&format!("rt.p{pid}.send_ns"));
            let recv = registry.histogram(&format!("rt.p{pid}.recv_latency_ns"));
            let drift = registry.histogram(&format!("rt.p{pid}.timer_drift_ns"));
            assert!(send.count() > 0, "p{pid} sent ticks");
            assert!(recv.count() > 0, "p{pid} received ticks");
            assert!(drift.count() > 0, "p{pid} timers fired");
            // Latency/drift are measured in nanoseconds of real time; a
            // 5ms-period gossip cannot plausibly show >60s values, which
            // would indicate clock arithmetic gone wrong.
            assert!(recv.max() < 60_000_000_000, "recv {}ns", recv.max());
            assert!(drift.max() < 60_000_000_000, "drift {}ns", drift.max());
        }
    }

    #[test]
    fn crash_makes_a_process_silent() {
        let rt = Runtime::spawn(2, RuntimeConfig::default(), |_, _| Counter { heard: 0 });
        rt.run_for(Duration::from_millis(50));
        rt.crash(ProcessId(1));
        rt.run_for(Duration::from_millis(30));
        let heard_mid = rt.observations().len(); // no observations in this actor; just exercise the API
        let _ = heard_mid;
        let actors = rt.shutdown();
        assert!(actors[0].is_some());
        assert!(actors[1].is_none(), "crashed actor must be dropped");
    }

    #[test]
    fn interact_reaches_the_actor() {
        let rt = Runtime::spawn(2, RuntimeConfig::default(), |_, _| Counter { heard: 0 });
        rt.interact(ProcessId(0), |_a, ctx| ctx.send(ProcessId(1), Tick));
        rt.run_for(Duration::from_millis(30));
        let actors = rt.shutdown();
        assert!(actors[1].as_ref().unwrap().heard >= 1);
    }

    #[test]
    fn loss_injection_drops_messages() {
        let lossless = Runtime::spawn(2, RuntimeConfig::default(), |_, _| Counter { heard: 0 });
        lossless.run_for(Duration::from_millis(100));
        let base: u64 = lossless
            .shutdown()
            .iter()
            .map(|a| a.as_ref().unwrap().heard)
            .sum();

        let lossy = Runtime::spawn(
            2,
            RuntimeConfig {
                loss_probability: 0.9,
                seed: 7,
                ..RuntimeConfig::default()
            },
            |_, _| Counter { heard: 0 },
        );
        lossy.run_for(Duration::from_millis(100));
        let dropped: u64 = lossy
            .shutdown()
            .iter()
            .map(|a| a.as_ref().unwrap().heard)
            .sum();
        assert!(
            dropped * 3 < base,
            "90% loss should cut throughput hard: lossless={base} lossy={dropped}"
        );
    }

    #[test]
    fn timer_id_raw_roundtrip() {
        // Construct TimerIds through a context to check the debug parse.
        let mut rng = SmallRng::seed_from_u64(0);
        let mut actions: Vec<Action<Tick>> = Vec::new();
        let mut next = 41;
        let mut ctx =
            Context::for_executor(ProcessId(0), 1, Time(0), &mut rng, &mut actions, &mut next);
        let id = ctx.set_timer(SimDuration::from_millis(1), TimerTag::new(0, 0, 0));
        assert_eq!(timer_id_raw(id), 41);
    }
}

#[cfg(test)]
mod delay_tests {
    use super::*;
    use fd_sim::{Payload, SimMessage};

    /// Observes the arrival time of the first message it receives.
    struct Stamp;
    #[derive(Clone, Debug)]
    struct Ping;
    impl SimMessage for Ping {
        fn kind(&self) -> &'static str {
            "ping"
        }
    }
    impl Actor for Stamp {
        type Msg = Ping;
        fn on_start(&mut self, _ctx: &mut Context<'_, Ping>) {}
        fn on_message(&mut self, ctx: &mut Context<'_, Ping>, _from: ProcessId, _m: Ping) {
            ctx.observe("got", Payload::None);
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, Ping>, _t: TimerTag) {}
    }

    #[test]
    fn injected_delay_holds_messages_back() {
        // Idle-core expectation: 40–60ms of injected latency. Accept
        // 30–400ms (scheduling can only add delay, so the loose upper
        // bound stays sound) and retry — see `eventually`.
        super::eventually(3, || {
            let cfg = RuntimeConfig {
                delay: Some((Duration::from_millis(40), Duration::from_millis(60))),
                ..RuntimeConfig::default()
            };
            let rt = Runtime::spawn(2, cfg, |_, _| Stamp);
            let sent_at = rt.now();
            rt.interact(ProcessId(0), |_a, ctx| ctx.send(ProcessId(1), Ping));
            rt.run_for(Duration::from_millis(500));
            let obs = rt.last_observation(ProcessId(1), "got");
            rt.shutdown();
            let Some(obs) = obs else {
                return Err("message never delivered".into());
            };
            let latency_ms = (obs.at.ticks() - sent_at.ticks()) / 1000;
            if (30..400).contains(&latency_ms) {
                Ok(())
            } else {
                Err(format!(
                    "expected ~40-60ms injected latency, measured {latency_ms}ms"
                ))
            }
        });
    }

    #[test]
    fn zero_delay_config_is_fast() {
        // Idle-core expectation: well under a millisecond for a direct
        // channel send. Accept up to 50ms and retry — see `eventually`.
        super::eventually(3, || {
            let rt = Runtime::spawn(2, RuntimeConfig::default(), |_, _| Stamp);
            let sent_at = rt.now();
            rt.interact(ProcessId(0), |_a, ctx| ctx.send(ProcessId(1), Ping));
            rt.run_for(Duration::from_millis(100));
            let obs = rt.last_observation(ProcessId(1), "got");
            rt.shutdown();
            let Some(obs) = obs else {
                return Err("message never delivered".into());
            };
            let latency_ms = (obs.at.ticks() - sent_at.ticks()) / 1000;
            if latency_ms < 50 {
                Ok(())
            } else {
                Err(format!("direct channel delivery took {latency_ms}ms"))
            }
        });
    }
}

/// Convert recorded [`RtObservation`]s into an [`fd_sim::Trace`] of
/// observation events (plus crash markers for the given crashed set), so
/// the property checkers in `fd-core` — class membership, Ω, consensus
/// properties — run unchanged on real-thread executions.
pub fn observations_to_trace(
    observations: &[RtObservation],
    crashed: &[(ProcessId, Time)],
) -> fd_sim::Trace {
    use fd_sim::{TraceEvent, TraceKind};
    let mut events: Vec<TraceEvent> = observations
        .iter()
        .map(|o| TraceEvent {
            at: o.at,
            kind: TraceKind::Observation {
                pid: o.pid,
                tag: o.tag,
                payload: o.payload.clone(),
            },
        })
        .collect();
    events.extend(crashed.iter().map(|&(pid, at)| TraceEvent {
        at,
        kind: TraceKind::Crashed { pid },
    }));
    events.sort_by_key(|e| e.at);
    fd_sim::Trace::from_events(events)
}
