//! The same protocol stack that runs in the simulator, on real OS
//! threads with wall-clock timers: detectors converge and the ◇C
//! consensus decides.

use fd_consensus::{ec_node_hb, EcNodeHb};
use fd_core::Standalone;
use fd_core::{obs, SuspectOracle};
use fd_detectors::{HeartbeatConfig, HeartbeatDetector};
use fd_runtime::{Runtime, RuntimeConfig};
use fd_sim::ProcessId;
use std::time::Duration;

#[test]
fn heartbeat_detector_runs_on_threads() {
    let n = 4;
    let rt = Runtime::spawn(n, RuntimeConfig::default(), |pid, n| {
        Standalone(HeartbeatDetector::new(pid, n, HeartbeatConfig::default()))
    });
    rt.run_for(Duration::from_millis(150));
    rt.crash(ProcessId(3));
    rt.run_for(Duration::from_millis(400));
    let actors = rt.shutdown();
    for (i, a) in actors.iter().enumerate().take(3) {
        let suspects = a.as_ref().unwrap().suspected();
        assert!(
            suspects.contains(ProcessId(3)),
            "p{i} failed to suspect the crashed process: {suspects}"
        );
        assert_eq!(suspects.len(), 1, "p{i} has false suspicions: {suspects}");
    }
}

#[test]
fn ec_consensus_decides_on_threads() {
    let n = 5;
    let rt: Runtime<EcNodeHb> = Runtime::spawn(n, RuntimeConfig::default(), ec_node_hb);
    // Let detectors settle, then propose everywhere.
    rt.run_for(Duration::from_millis(100));
    for i in 0..n {
        let v = 100 + i as u64;
        rt.interact(ProcessId(i), move |node, ctx| node.propose(ctx, v));
    }
    // Wait (with a hard cap) until every process records a decision.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let decided = (0..n)
            .filter(|&i| rt.last_observation(ProcessId(i), obs::DECIDE).is_some())
            .count();
        if decided == n {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "only {decided}/{n} decided in 10s"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // All decisions agree and are proposed values.
    let actors = rt.shutdown();
    let mut values = Vec::new();
    for a in &actors {
        let (v, _r) = a.as_ref().unwrap().decision().expect("decided");
        values.push(v);
    }
    values.dedup();
    assert_eq!(values.len(), 1, "disagreement on threads: {values:?}");
    assert!((100..100 + n as u64).contains(&values[0]));
}

#[test]
fn ec_consensus_survives_a_crash_on_threads() {
    let n = 5;
    let rt: Runtime<EcNodeHb> = Runtime::spawn(n, RuntimeConfig::default(), ec_node_hb);
    rt.run_for(Duration::from_millis(100));
    for i in 0..n {
        let v = 7;
        rt.interact(ProcessId(i), move |node, ctx| node.propose(ctx, v));
    }
    // Crash a non-leader quickly; the majority must still decide.
    rt.crash(ProcessId(4));
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let decided = (0..4)
            .filter(|&i| rt.last_observation(ProcessId(i), obs::DECIDE).is_some())
            .count();
        if decided == 4 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "only {decided}/4 decided in 10s"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let actors = rt.shutdown();
    for a in actors.iter().take(4) {
        assert_eq!(a.as_ref().unwrap().decision().unwrap().0, 7);
    }
}

#[test]
fn ec_consensus_decides_over_a_slow_jittery_network() {
    // 10–30 ms injected per-message delay: heartbeats arrive late enough
    // to cause early false suspicions; the adaptive timeouts must absorb
    // them and consensus still decide.
    let n = 4;
    let cfg = RuntimeConfig {
        delay: Some((
            std::time::Duration::from_millis(10),
            std::time::Duration::from_millis(30),
        )),
        ..RuntimeConfig::default()
    };
    let rt: Runtime<EcNodeHb> = Runtime::spawn(n, cfg, ec_node_hb);
    rt.run_for(std::time::Duration::from_millis(300));
    for i in 0..n {
        let v = 60 + i as u64;
        rt.interact(ProcessId(i), move |node, ctx| node.propose(ctx, v));
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(15);
    loop {
        let decided = (0..n)
            .filter(|&i| rt.last_observation(ProcessId(i), obs::DECIDE).is_some())
            .count();
        if decided == n {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "only {decided}/{n} decided in 15s"
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    let actors = rt.shutdown();
    let mut values: Vec<u64> = actors
        .iter()
        .map(|a| a.as_ref().unwrap().decision().unwrap().0)
        .collect();
    values.dedup();
    assert_eq!(
        values.len(),
        1,
        "disagreement over the slow network: {values:?}"
    );
}

#[test]
fn trace_checkers_verify_real_thread_runs() {
    // The same fd-core property machinery that audits simulator traces
    // audits real executions, via the observation→trace bridge.
    use fd_core::{ConsensusRun, FdClass, FdRun};
    use fd_runtime::observations_to_trace;

    let n = 4;
    let rt: Runtime<EcNodeHb> = Runtime::spawn(n, RuntimeConfig::default(), ec_node_hb);
    rt.run_for(Duration::from_millis(150));
    rt.crash(ProcessId(3));
    let crash_at = rt.now();
    rt.run_for(Duration::from_millis(400));
    for i in 0..3 {
        let v = 5;
        rt.interact(ProcessId(i), move |node, ctx| node.propose(ctx, v));
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while (0..3).any(|i| rt.last_observation(ProcessId(i), obs::DECIDE).is_none()) {
        assert!(std::time::Instant::now() < deadline, "no decision in 10s");
        std::thread::sleep(Duration::from_millis(20));
    }
    rt.run_for(Duration::from_millis(200));
    let end = rt.now();
    let observations = rt.observations();
    rt.shutdown();

    let trace = observations_to_trace(&observations, &[(ProcessId(3), crash_at)]);
    // Detector properties on the live run...
    let fd_run = FdRun::new(&trace, n, end);
    fd_run.check_class(FdClass::EventuallyConsistent).unwrap();
    assert_eq!(fd_run.final_trusted(ProcessId(0)), Some(ProcessId(0)));
    // ...and consensus safety (p3 proposed nothing; it crashed first).
    let c_run = ConsensusRun::new(&trace, n);
    c_run.check_safety().unwrap();
    c_run.check_termination().unwrap();
}

#[test]
fn ct_and_mr_also_decide_on_threads() {
    use fd_consensus::{ct_node_hb, mr_node_leader, CtNodeHb, MrNodeLeader};
    let n = 5;

    let rt: Runtime<CtNodeHb> = Runtime::spawn(n, RuntimeConfig::default(), ct_node_hb);
    rt.run_for(Duration::from_millis(120));
    for i in 0..n {
        let v = 40 + i as u64;
        rt.interact(ProcessId(i), move |node, ctx| node.propose(ctx, v));
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while (0..n).any(|i| rt.last_observation(ProcessId(i), obs::DECIDE).is_none()) {
        assert!(
            std::time::Instant::now() < deadline,
            "CT stalled on threads"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    rt.shutdown();

    let rt: Runtime<MrNodeLeader> = Runtime::spawn(n, RuntimeConfig::default(), mr_node_leader);
    rt.run_for(Duration::from_millis(120));
    for i in 0..n {
        let v = 50 + i as u64;
        rt.interact(ProcessId(i), move |node, ctx| node.propose(ctx, v));
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while (0..n).any(|i| rt.last_observation(ProcessId(i), obs::DECIDE).is_none()) {
        assert!(
            std::time::Instant::now() < deadline,
            "MR stalled on threads"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    rt.shutdown();
}
