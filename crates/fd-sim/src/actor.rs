//! The actor abstraction: protocol code hosted at one process.
//!
//! A simulated node implements [`Actor`]. The kernel invokes its callbacks
//! for startup, message delivery, and timer expiry; the actor reacts by
//! queueing *actions* (sends, timer arms/cancels, trace observations) on
//! its [`Context`]. Actions are applied by the kernel after the callback
//! returns, which keeps the borrow structure simple and the event order
//! deterministic.

use crate::process::ProcessId;
use crate::time::{SimDuration, Time};
use crate::trace::Payload;
use rand::rngs::SmallRng;
use std::fmt;

/// Messages exchanged by actors.
///
/// `kind` labels the message for metrics (e.g. `"estimate"`, `"ack"`);
/// `round` optionally tags the protocol round it belongs to, letting the
/// experiment harness count messages per round exactly as the paper does.
pub trait SimMessage: Clone + fmt::Debug + 'static {
    /// A short static label for metrics aggregation.
    fn kind(&self) -> &'static str {
        "message"
    }
    /// The protocol round this message belongs to, if any.
    fn round(&self) -> Option<u64> {
        None
    }
}

/// A timer label. `ns` is a component namespace (so independent protocol
/// components hosted on one actor never collide), `kind` distinguishes the
/// timers of one component, and `data` carries free payload (a peer index,
/// a round number, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerTag {
    /// Component namespace.
    pub ns: u32,
    /// Timer kind within the namespace.
    pub kind: u32,
    /// Free payload.
    pub data: u64,
}

impl TimerTag {
    /// Construct a tag.
    pub const fn new(ns: u32, kind: u32, data: u64) -> TimerTag {
        TimerTag { ns, kind, data }
    }
}

/// Handle to a pending timer, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub(crate) u64);

impl TimerId {
    /// The raw unique key — for alternate executors that keep their own
    /// cancellation sets.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// An action queued by an actor callback.
///
/// The simulation kernel applies these itself; alternate executors (the
/// threaded runtime in `fd-runtime`) construct a [`Context`] via
/// [`Context::for_executor`], run a callback, and interpret the drained
/// actions against their own transport and clock.
#[derive(Debug)]
pub enum Action<M> {
    /// Send `msg` to `to`.
    Send {
        /// Destination.
        to: ProcessId,
        /// The message.
        msg: M,
    },
    /// Send one `msg` to every process in identity order — the
    /// allocation-free form of all-to-all: the kernel fans the single
    /// payload out behind a reference count instead of the sender
    /// cloning it per destination. Trace, metrics, and delivery order
    /// are exactly as if the sender had queued one [`Action::Send`] per
    /// destination.
    Broadcast {
        /// Also deliver to the sender itself (over its loopback link).
        include_self: bool,
        /// The shared message.
        msg: M,
    },
    /// Arm one-shot timer `id` to fire `after` from now with `tag`.
    SetTimer {
        /// Cancellation handle.
        id: TimerId,
        /// Relative deadline.
        after: SimDuration,
        /// Label delivered back to the actor.
        tag: TimerTag,
    },
    /// Cancel timer `id`.
    CancelTimer {
        /// The handle returned by the corresponding set.
        id: TimerId,
    },
    /// Record a protocol observation.
    Observe {
        /// Observation tag.
        tag: &'static str,
        /// Structured payload.
        payload: Payload,
    },
}

/// Flatten a drained action list into the concrete `(destination,
/// message)` pairs the kernel would route: [`Action::Send`] passes
/// through, [`Action::Broadcast`] expands in identity order (skipping
/// `me` unless `include_self`), everything else is ignored.
///
/// Intended for unit tests that assert on a component's outgoing
/// traffic without caring whether it was queued as unicasts or as one
/// broadcast.
pub fn expand_sends<M: Clone>(
    me: ProcessId,
    n: usize,
    actions: &[Action<M>],
) -> Vec<(ProcessId, M)> {
    let mut out = Vec::new();
    for a in actions {
        match a {
            Action::Send { to, msg } => out.push((*to, msg.clone())),
            Action::Broadcast { include_self, msg } => {
                for i in 0..n {
                    if i == me.index() && !include_self {
                        continue;
                    }
                    out.push((ProcessId(i), msg.clone()));
                }
            }
            // Not sends: nothing for the caller's message assertions.
            Action::SetTimer { .. } | Action::CancelTimer { .. } | Action::Observe { .. } => {}
        }
    }
    out
}

/// The execution context handed to actor callbacks.
pub struct Context<'a, M> {
    pub(crate) me: ProcessId,
    pub(crate) n: usize,
    pub(crate) now: Time,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) actions: &'a mut Vec<Action<M>>,
    pub(crate) next_timer_id: &'a mut u64,
}

impl<'a, M> Context<'a, M> {
    /// Build a context for an alternate executor (e.g. the threaded
    /// runtime). The executor owns the `actions` buffer and interprets
    /// its contents after the callback returns; `next_timer_id` must be
    /// monotonically maintained across calls so [`TimerId`]s stay unique.
    pub fn for_executor(
        me: ProcessId,
        n: usize,
        now: Time,
        rng: &'a mut SmallRng,
        actions: &'a mut Vec<Action<M>>,
        next_timer_id: &'a mut u64,
    ) -> Context<'a, M> {
        Context {
            me,
            n,
            now,
            rng,
            actions,
            next_timer_id,
        }
    }

    /// This process's identity.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Total number of processes in the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// This process's private random number generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Send `msg` to `to` over the configured link.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Send `msg` to every process except this one, in identity order.
    ///
    /// Queues a single [`Action::Broadcast`]; the kernel shares the one
    /// payload across all deliveries instead of cloning per destination.
    pub fn send_to_others(&mut self, msg: M)
    where
        M: Clone,
    {
        self.actions.push(Action::Broadcast {
            include_self: false,
            msg,
        });
    }

    /// Send `msg` to every process including this one, in identity order.
    pub fn send_to_all(&mut self, msg: M)
    where
        M: Clone,
    {
        self.actions.push(Action::Broadcast {
            include_self: true,
            msg,
        });
    }

    /// Arm a one-shot timer that fires `after` from now, carrying `tag`.
    pub fn set_timer(&mut self, after: SimDuration, tag: TimerTag) -> TimerId {
        let id = TimerId(*self.next_timer_id);
        *self.next_timer_id += 1;
        self.actions.push(Action::SetTimer { id, after, tag });
        id
    }

    /// Cancel a previously armed timer. Cancelling an already-fired timer
    /// is a harmless no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.actions.push(Action::CancelTimer { id });
    }

    /// Record an observation in the run trace (e.g. a failure-detector
    /// output change or a consensus decision). Observations are the raw
    /// material of the property checkers in `fd-core`.
    pub fn observe(&mut self, tag: &'static str, payload: Payload) {
        self.actions.push(Action::Observe { tag, payload });
    }
}

/// Protocol code hosted at one simulated process.
pub trait Actor: 'static {
    /// The message type this actor exchanges.
    type Msg: SimMessage;

    /// Invoked once at time zero, before any delivery.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>);

    /// Invoked when a message from `from` is delivered.
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: ProcessId, msg: Self::Msg);

    /// Invoked when a timer armed by this actor fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, tag: TimerTag);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_process_rng;

    #[derive(Clone, Debug)]
    struct Ping;
    impl SimMessage for Ping {
        fn kind(&self) -> &'static str {
            "ping"
        }
    }

    fn with_ctx<R>(f: impl FnOnce(&mut Context<'_, Ping>) -> R) -> (R, Vec<Action<Ping>>) {
        let mut rng = derive_process_rng(0, 0);
        let mut actions = Vec::new();
        let mut next = 0;
        let mut ctx = Context {
            me: ProcessId(1),
            n: 4,
            now: Time::from_millis(5),
            rng: &mut rng,
            actions: &mut actions,
            next_timer_id: &mut next,
        };
        let r = f(&mut ctx);
        (r, actions)
    }

    #[test]
    fn send_to_others_queues_one_broadcast_without_self() {
        let (_, actions) = with_ctx(|ctx| ctx.send_to_others(Ping));
        assert_eq!(actions.len(), 1, "one action regardless of n");
        assert!(matches!(
            actions[0],
            Action::Broadcast {
                include_self: false,
                ..
            }
        ));
    }

    #[test]
    fn send_to_all_queues_one_broadcast_with_self() {
        let (_, actions) = with_ctx(|ctx| ctx.send_to_all(Ping));
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            actions[0],
            Action::Broadcast {
                include_self: true,
                ..
            }
        ));
    }

    #[test]
    fn timer_ids_are_unique_and_monotonic() {
        let ((a, b), actions) = with_ctx(|ctx| {
            let a = ctx.set_timer(SimDuration(1), TimerTag::new(0, 0, 0));
            let b = ctx.set_timer(SimDuration(2), TimerTag::new(0, 1, 9));
            (a, b)
        });
        assert_ne!(a, b);
        assert_eq!(actions.len(), 2);
    }

    #[test]
    fn context_exposes_identity_and_time() {
        let ((me, n, now), _) = with_ctx(|ctx| (ctx.me(), ctx.n(), ctx.now()));
        assert_eq!(me, ProcessId(1));
        assert_eq!(n, 4);
        assert_eq!(now, Time::from_millis(5));
    }
}
