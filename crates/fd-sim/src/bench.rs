//! Benchmark drivers over the kernel's crate-private hot paths.
//!
//! The microbenchmark suite in `fd-bench` (`ecfd bench-kernel`) needs to
//! time the event queue, the dispatch loop, and trace recording in
//! isolation, but those internals are deliberately not public API. This
//! module exposes narrow *workload drivers* instead: each runs a fixed,
//! deterministic amount of work through one subsystem and returns a
//! checksum so the optimizer cannot discard it. Callers time the whole
//! call and divide by the reported operation count.

use crate::actor::{Actor, Context, SimMessage, TimerTag};
use crate::event::{EventKind, EventQueue, QueueImpl};
use crate::link::LinkModel;
use crate::process::ProcessId;
use crate::time::{SimDuration, Time};
use crate::topology::NetworkConfig;
use crate::trace::{Trace, TraceKind};
use crate::world::WorldBuilder;

/// A tiny deterministic LCG — the benches must not consume the workspace
/// RNG (and must not depend on it), they just need a fixed scatter of
/// delays that mimics the heartbeat workload: mostly near-future, an
/// occasional far-future outlier that lands in the overflow path.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        // Knuth's MMIX multiplier; low bits are fine for bucketing tests.
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Push/pop `events` timer events through an [`EventQueue`] of the chosen
/// implementation, interleaving bursts of pushes with draining pops the
/// way the kernel does (schedule a handful of sends and timers, then
/// consume). Delays are mostly within the wheel horizon with a 1-in-64
/// far-future outlier. Returns a fold of the pop order (time ⊕ seq) so
/// two implementations can also be cross-checked for identical ordering.
pub fn queue_churn(imp: QueueImpl, events: u64) -> u64 {
    let mut q: EventQueue<u64> = EventQueue::with_impl(imp);
    let mut rng = Lcg(0x5eed);
    let mut now = Time::ZERO;
    let mut pushed = 0u64;
    let mut acc = 0u64;
    while pushed < events || !q.is_empty() {
        // Burst of up to 4 pushes relative to the current front.
        for _ in 0..4 {
            if pushed >= events {
                break;
            }
            let r = rng.next();
            let delay = if r.is_multiple_of(64) {
                // Past the wheel horizon: exercises the overflow heap.
                1 << 20
            } else {
                r % 4096
            };
            q.push(
                Time(now.0 + delay),
                EventKind::Timer {
                    pid: ProcessId((r % 7) as usize),
                    id: crate::actor::TimerId(pushed),
                    tag: TimerTag::new(0, 0, pushed),
                    epoch: 0,
                },
            );
            pushed += 1;
        }
        if let Some(ev) = q.pop() {
            now = ev.at;
            acc = acc
                .rotate_left(7)
                .wrapping_add(ev.at.0)
                .wrapping_add(ev.seq.wrapping_mul(0x9e37_79b9));
        }
    }
    acc
}

#[derive(Clone, Debug)]
struct Beat(u64);

impl SimMessage for Beat {
    fn kind(&self) -> &'static str {
        "beat"
    }
}

/// A heartbeat-flood actor: broadcasts on a fixed period and counts
/// deliveries — the densest all-to-all dispatch pattern the detectors
/// generate, with none of their protocol logic in the way.
struct Flooder {
    beats: u64,
    seen: u64,
}

const FLOOD_TICK: TimerTag = TimerTag::new(0xbe, 0, 0);

impl Actor for Flooder {
    type Msg = Beat;

    fn on_start(&mut self, ctx: &mut Context<'_, Beat>) {
        ctx.set_timer(SimDuration::from_millis(1), FLOOD_TICK);
    }

    fn on_message(&mut self, _ctx: &mut Context<'_, Beat>, _from: ProcessId, msg: Beat) {
        self.seen = self.seen.wrapping_add(msg.0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Beat>, _tag: TimerTag) {
        self.beats += 1;
        ctx.send_to_others(Beat(self.beats));
        ctx.set_timer(SimDuration::from_millis(1), FLOOD_TICK);
    }
}

/// Run an `n`-process broadcast flood for `millis` of simulated time and
/// return the kernel events processed. Times the full dispatch path —
/// queue, rc-shared broadcast fan-out, callback, action drain — under a
/// message-dominated load.
pub fn dispatch_flood(n: usize, millis: u64) -> u64 {
    let net =
        NetworkConfig::new(n).with_default(LinkModel::reliable_const(SimDuration::from_ticks(100)));
    let mut w = WorldBuilder::new(net)
        .seed(7)
        .build(|_, _| Flooder { beats: 0, seen: 0 });
    w.run_until_time(Time::from_millis(millis));
    let (_, metrics) = w.into_results();
    metrics.events_processed()
}

/// Append `events` synthetic trace events into one reused [`Trace`]
/// (reset between fills exercises the arena-reuse path) and return the
/// digest of the final fill — the exact per-event recording plus digest
/// cost the campaign pays.
pub fn trace_fill(events: u64) -> u64 {
    let mut trace = Trace::default();
    let mut digest = 0u64;
    for round in 0..2u64 {
        trace.reset_with_capacity(events as usize);
        for i in 0..events {
            let from = ProcessId((i % 5) as usize);
            let to = ProcessId(((i + 1) % 5) as usize);
            let kind = match i % 3 {
                0 => TraceKind::Sent {
                    from,
                    to,
                    kind: "beat",
                    round: Some(round),
                },
                1 => TraceKind::Delivered {
                    from,
                    to,
                    kind: "beat",
                    round: Some(round),
                },
                _ => TraceKind::Crashed { pid: from },
            };
            trace.push(Time(i * 100), kind);
        }
        digest = trace.digest();
    }
    digest
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_churn_orders_identically_across_impls() {
        for events in [64, 1000, 5000] {
            assert_eq!(
                queue_churn(QueueImpl::Wheel, events),
                queue_churn(QueueImpl::Classic, events),
                "pop-order checksums must match at {events} events"
            );
        }
    }

    #[test]
    fn dispatch_flood_processes_the_expected_load() {
        let events = dispatch_flood(5, 20);
        // 5 processes × ~20 ticks × (1 timer + 4 deliveries) plus starts.
        assert!(events > 400, "flood should be message-dominated: {events}");
        assert_eq!(events, dispatch_flood(5, 20), "deterministic");
    }

    #[test]
    fn trace_fill_is_deterministic_and_nonzero() {
        assert_ne!(trace_fill(100), 0);
        assert_eq!(trace_fill(100), trace_fill(100));
    }
}
