//! Scheduled fault injection: kernel-side interventions.
//!
//! An [`Intervention`] is a timed mutation of the world's *environment*
//! — the network configuration, the message mangler, or a process's
//! crash state — dispatched through the ordinary event queue, so it
//! obeys the same strict `(time, sequence)` ordering as every message
//! and timer and preserves byte-identical replay. Each intervention also
//! records a trace [`Observation`](crate::trace::TraceKind::Observation)
//! with its `tag` and `payload`, which makes the fault schedule part of
//! the trace itself: digests cover it, [`Timeline`](crate::Timeline)
//! renders it as band annotations, and the `fd-core` chaos checkers
//! derive the post-fault "quiet point" from it without a side channel.
//!
//! The declarative plan layer (crate `fd-chaos`) compiles serializable
//! `ChaosPlan`s down to these interventions; this module is deliberately
//! minimal — just the state changes the kernel can apply and the shared
//! tag vocabulary.

use crate::link::{LinkMangler, LinkModel};
use crate::process::ProcessId;
use crate::trace::Payload;

/// Trace tag of a scheduled crash intervention (the `Crashed` trace
/// event is still recorded; this annotation attributes it to the plan).
pub use fd_obs::keys::CHAOS_CRASH as CRASH;
/// Trace tag announcing which detector class the run's scenario expects
/// its checker to uphold (payload: index into `fd-core`'s class list).
pub use fd_obs::keys::CHAOS_EXPECT_CLASS as EXPECT_CLASS;
/// Trace tag marking the (scenario-chosen) global stabilization time.
/// Chaos checkers treat it as part of the fault schedule: liveness is
/// only demanded after the last chaos tag in the trace.
pub use fd_obs::keys::CHAOS_GST as GST;
/// Trace tag of an intervention that restores previously cut links; the
/// kernel decrements its active-partition count on this tag.
pub use fd_obs::keys::CHAOS_HEAL as HEAL;
/// Trace tag of an intervention installing a [`LinkMangler`].
pub use fd_obs::keys::CHAOS_MANGLE as MANGLE;
/// Trace tag of an intervention that cuts one or more links. The kernel
/// increments its active-partition count (and the `chaos.partitions_active`
/// gauge, when instrumented) whenever an intervention carries this tag.
pub use fd_obs::keys::CHAOS_PARTITION as PARTITION;
/// Trace tag of a warm restart of a previously crashed process.
pub use fd_obs::keys::CHAOS_RESTART as RESTART;
/// Trace tag of an intervention removing the installed [`LinkMangler`].
pub use fd_obs::keys::CHAOS_UNMANGLE as UNMANGLE;

/// Every tag this module defines, for tooling that filters chaos bands.
pub const ALL_TAGS: [&str; 8] = [
    PARTITION,
    HEAL,
    MANGLE,
    UNMANGLE,
    GST,
    CRASH,
    RESTART,
    EXPECT_CLASS,
];

/// The state change an [`Intervention`] applies when it fires.
#[derive(Debug, Clone, PartialEq)]
pub enum NetChange {
    /// No state change — the intervention only annotates the trace
    /// (e.g. a GST marker or an expected-class declaration).
    Annotate,
    /// Set the model of each listed directed link. One variant covers
    /// both cuts (every triple maps to [`LinkModel::Dead`]) and heals
    /// (every triple restores its pre-cut model), so a whole partition
    /// is one atomic intervention event.
    SetLinks(Vec<(ProcessId, ProcessId, LinkModel)>),
    /// Replace the network's default link model (links without explicit
    /// overrides), e.g. to move every link into its post-GST regime.
    SetDefault(LinkModel),
    /// Install (`Some`) or remove (`None`) the global message mangler.
    SetMangler(Option<LinkMangler>),
    /// Crash a process — equivalent to
    /// [`World::schedule_crash`](crate::World::schedule_crash), but
    /// attributable to the fault plan via the intervention's tag.
    Crash(ProcessId),
    /// Warm-restart a crashed process: clear its crashed flag, advance
    /// its timer epoch (pending pre-crash timers die silently), and
    /// re-run `on_start`. The actor keeps its in-memory state and its
    /// RNG stream — a recovery, not a rebirth. A no-op if the process
    /// has not crashed.
    Restart(ProcessId),
}

/// A timed mutation of the world's environment plus its trace footprint.
///
/// Schedule with [`World::schedule_intervention`](crate::World::schedule_intervention);
/// when the event fires the kernel records
/// `Observation { pid: p0, tag, payload }` (harness observations are
/// attributed to process 0, like [`World::annotate`](crate::World::annotate))
/// and then applies `change`.
#[derive(Debug, Clone, PartialEq)]
pub struct Intervention {
    /// Trace tag recorded when the intervention fires — normally one of
    /// this module's constants, so downstream tooling recognizes it.
    pub tag: &'static str,
    /// Structured payload recorded with the tag (e.g. the affected
    /// processes of a partition).
    pub payload: Payload,
    /// The state change to apply.
    pub change: NetChange,
}

impl Intervention {
    /// An annotation-only intervention (no state change).
    pub fn annotate(tag: &'static str, payload: Payload) -> Intervention {
        Intervention {
            tag,
            payload,
            change: NetChange::Annotate,
        }
    }
}
