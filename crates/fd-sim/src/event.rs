//! The kernel event queue.
//!
//! Two interchangeable implementations live behind [`EventQueue`], both
//! delivering events in strict `(time, sequence)` order — the
//! monotonically increasing sequence number breaks ties
//! deterministically, so two events scheduled for the same instant fire
//! in scheduling order and identical seeds always replay identical runs.
//!
//! * [`QueueImpl::Wheel`] (the default) is a timer wheel tuned for the
//!   workload heartbeat protocols generate: almost every event lands
//!   within a few milliseconds of *now*. Events are bucketed by coarse
//!   time spans; the active span is kept sorted and consumed in place,
//!   future spans stay unsorted until activated, and events beyond the
//!   wheel horizon overflow into a binary heap that is migrated back as
//!   the wheel turns.
//! * [`QueueImpl::Classic`] is the original `BinaryHeap` — kept so the
//!   golden-digest tests can prove the wheel produces byte-identical
//!   traces, and as a fallback for pathological schedules.

use crate::actor::{TimerId, TimerTag};
use crate::process::ProcessId;
use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// A delivery payload: owned for unicast sends, reference-counted for
/// broadcast fan-out so an all-to-all send shares one message allocation
/// instead of cloning per destination.
#[derive(Debug)]
pub(crate) enum MsgSlot<M> {
    /// The queue owns the only copy.
    Inline(M),
    /// One of several deliveries sharing the same broadcast payload.
    /// `Rc` (not `Arc`) is deliberate: a `World` is single-threaded;
    /// campaign workers each own their worlds outright.
    Shared(Rc<M>),
}

impl<M> MsgSlot<M> {
    /// Borrow the payload (for metrics/trace labels).
    pub fn get(&self) -> &M {
        match self {
            MsgSlot::Inline(m) => m,
            MsgSlot::Shared(m) => m,
        }
    }

    /// Take the payload, cloning only if other deliveries still share it
    /// (the last delivery of a broadcast moves the message out).
    pub fn take(self) -> M
    where
        M: Clone,
    {
        match self {
            MsgSlot::Inline(m) => m,
            MsgSlot::Shared(rc) => Rc::try_unwrap(rc).unwrap_or_else(|rc| (*rc).clone()),
        }
    }
}

/// What a scheduled event does when it fires.
#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// Deliver `msg` from `from` to `to`.
    Deliver {
        from: ProcessId,
        to: ProcessId,
        msg: MsgSlot<M>,
    },
    /// Fire timer `id` with `tag` at `pid` — but only if the process is
    /// still in the timer's `epoch`. A warm restart advances the
    /// process's epoch, so timer chains armed before a crash die
    /// silently instead of resurrecting alongside the restarted actor.
    Timer {
        pid: ProcessId,
        id: TimerId,
        tag: TimerTag,
        epoch: u32,
    },
    /// Crash `pid` (crash-stop).
    Crash { pid: ProcessId },
    /// Apply a scheduled fault-injection intervention (see
    /// [`crate::chaos`]). Boxed: interventions are rare and can carry
    /// link-model vectors, so they should not widen the hot variants.
    Intervention(Box<crate::chaos::Intervention>),
}

/// One scheduled event: its due time, a tie-breaking sequence number
/// (FIFO among events at the same instant), and the payload.
#[derive(Debug)]
pub(crate) struct QueuedEvent<M> {
    /// Simulated due time.
    pub at: Time,
    /// Insertion order, for deterministic same-time ordering.
    pub seq: u64,
    /// What happens when the event fires.
    pub kind: EventKind<M>,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for QueuedEvent<M> {}

impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}
impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Which event-queue implementation a world runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueImpl {
    /// Timer wheel with overflow heap (the default).
    #[default]
    Wheel,
    /// The original binary heap, for golden-digest comparison runs.
    Classic,
}

impl QueueImpl {
    /// Stable label for benchmark JSON.
    pub fn label(self) -> &'static str {
        match self {
            QueueImpl::Wheel => "wheel",
            QueueImpl::Classic => "classic",
        }
    }
}

/// Ticks per bucket, as a shift: 2^10 = 1024 ticks ≈ 1ms per span.
const BUCKET_SHIFT: u32 = 10;
/// Number of wheel slots (power of two). Horizon = 256 × 1024 ticks
/// ≈ 262ms, comfortably past the heartbeat periods and link delays the
/// protocols schedule; only far-future timers and late crash plans
/// overflow.
const BUCKET_COUNT: usize = 256;
const BUCKET_MASK: usize = BUCKET_COUNT - 1;
const WORDS: usize = BUCKET_COUNT / 64;

fn bucket_of(at: Time) -> u64 {
    at.0 >> BUCKET_SHIFT
}

/// The timer-wheel implementation.
///
/// Ordering invariants (what makes pops come out in exact `(at, seq)`
/// order, matching the classic heap event for event):
///
/// * `current` holds the active span sorted ascending by `(at, seq)`;
///   `cur_head` is the consumption point. Pushes that land at or before
///   the active span go into the `inserts` min-heap instead of being
///   spliced into `current` — a large-n broadcast scheduling thousands
///   of same-span deliveries would otherwise pay O(span) per push via
///   `Vec::insert`. Pops merge the two sorted sources by `(at, seq)`.
///   The kernel never schedules into the past, so inserted keys are
///   always at or after the consumption point.
/// * `buckets[b & MASK]` holds the events of absolute bucket `b` for
///   `cur_bucket < b < cur_bucket + BUCKET_COUNT`, unsorted; a bucket is
///   sorted once, when it becomes the active span. Sequence numbers are
///   unique, so the sort order is total and deterministic.
/// * `overflow` holds everything at or beyond the horizon in a min-heap.
///   Overflow times are always at or beyond every wheel time, so the
///   wheel is exhausted first; on each span advance, overflow events
///   that fell inside the new horizon migrate into their buckets.
///   Span advance happens only when `current` *and* `inserts` are both
///   exhausted, so `inserts` is empty at every `activate`.
pub(crate) struct TimerWheel<M> {
    current: Vec<QueuedEvent<M>>,
    cur_head: usize,
    cur_bucket: u64,
    buckets: Vec<Vec<QueuedEvent<M>>>,
    occupied: [u64; WORDS],
    inserts: BinaryHeap<QueuedEvent<M>>,
    overflow: BinaryHeap<QueuedEvent<M>>,
    len: usize,
    next_seq: u64,
}

impl<M> TimerWheel<M> {
    fn new() -> Self {
        TimerWheel {
            current: Vec::new(),
            cur_head: 0,
            cur_bucket: 0,
            buckets: (0..BUCKET_COUNT).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
            inserts: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            len: 0,
            next_seq: 0,
        }
    }

    // fd-lint: hot_path
    fn push(&mut self, at: Time, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let ev = QueuedEvent { at, seq, kind };
        let b = bucket_of(at);
        if b <= self.cur_bucket {
            // Into (or before) the active span: heap-ordered side table,
            // merged against `current` at pop time. O(log inserts) beats
            // the old O(span) `Vec::insert` when a broadcast lands
            // thousands of deliveries in the active span.
            self.inserts.push(ev);
        } else if b - self.cur_bucket < BUCKET_COUNT as u64 {
            let slot = (b as usize) & BUCKET_MASK;
            // fd-lint: allow(HP001, reason = "slot is masked with BUCKET_MASK, always within buckets")
            self.buckets[slot].push(ev);
            // fd-lint: allow(HP001, reason = "slot >> 6 < WORDS because slot < BUCKET_COUNT")
            self.occupied[slot >> 6] |= 1u64 << (slot & 63);
        } else {
            self.overflow.push(ev);
        }
    }

    /// Whether the next event comes from `inserts` rather than `current`.
    /// Caller guarantees at least one of the two is non-empty.
    fn next_is_insert(&self) -> bool {
        match (self.current.get(self.cur_head), self.inserts.peek()) {
            (Some(c), Some(i)) => (i.at, i.seq) < (c.at, c.seq),
            (Some(_), None) => false,
            (None, _) => true,
        }
    }

    /// Take the head of `current`, advancing the consumption point.
    fn take_current_head(&mut self) -> QueuedEvent<M> {
        let dummy = QueuedEvent {
            at: Time(0),
            seq: 0,
            kind: EventKind::Crash { pid: ProcessId(0) },
        };
        // fd-lint: allow(HP001, reason = "take_current_head is only called after peeking Some at cur_head")
        let ev = std::mem::replace(&mut self.current[self.cur_head], dummy);
        self.cur_head += 1;
        if self.cur_head == self.current.len() {
            self.current.clear();
            self.cur_head = 0;
        }
        ev
    }

    // fd-lint: hot_path
    fn pop(&mut self) -> Option<QueuedEvent<M>> {
        if !self.ensure_current() {
            return None;
        }
        self.len -= 1;
        if self.next_is_insert() {
            let ev = self
                .inserts
                .pop()
                // fd-lint: allow(UH002, HP001, reason = "next_is_insert returned true, so the inserts heap is non-empty")
                .expect("next_is_insert implies non-empty");
            return Some(ev);
        }
        Some(self.take_current_head())
    }

    /// Drain every event due at the earliest pending timestamp into
    /// `out`, provided that timestamp is at or before `bound`. Returns
    /// the number of events appended. One span/heap resolution serves
    /// the whole same-instant batch — the kernel's per-timestamp
    /// processing loop calls this instead of `pop_due` per event.
    fn pop_due_batch(&mut self, bound: Time, out: &mut Vec<QueuedEvent<M>>) -> usize {
        if !self.ensure_current() {
            return 0;
        }
        let t = match (self.current.get(self.cur_head), self.inserts.peek()) {
            (Some(c), Some(i)) => c.at.min(i.at),
            (Some(c), None) => c.at,
            (None, Some(i)) => i.at,
            (None, None) => unreachable!("ensure_current returned true"),
        };
        if t > bound {
            return 0;
        }
        let start = out.len();
        loop {
            let cur_due = self.current.get(self.cur_head).is_some_and(|e| e.at == t);
            let ins_due = self.inserts.peek().is_some_and(|e| e.at == t);
            let ev = match (cur_due, ins_due) {
                (true, false) => self.take_current_head(),
                (false, true) => {
                    // fd-lint: allow(UH002, reason = "ins_due peeked a non-empty heap")
                    self.inserts.pop().expect("ins_due implies non-empty")
                }
                (true, true) => {
                    if self.next_is_insert() {
                        // fd-lint: allow(UH002, reason = "ins_due peeked a non-empty heap")
                        self.inserts.pop().expect("ins_due implies non-empty")
                    } else {
                        self.take_current_head()
                    }
                }
                (false, false) => break,
            };
            out.push(ev);
        }
        let drained = out.len() - start;
        self.len -= drained;
        drained
    }

    fn peek_time(&mut self) -> Option<Time> {
        if !self.ensure_current() {
            return None;
        }
        let cur = self.current.get(self.cur_head).map(|e| e.at);
        let ins = self.inserts.peek().map(|e| e.at);
        match (cur, ins) {
            (Some(c), Some(i)) => Some(c.min(i)),
            (c, i) => c.or(i),
        }
    }

    /// Advance spans until the active one is non-empty. Returns `false`
    /// iff the queue is empty.
    fn ensure_current(&mut self) -> bool {
        loop {
            if self.cur_head < self.current.len() || !self.inserts.is_empty() {
                return true;
            }
            if self.len == 0 {
                return false;
            }
            self.current.clear();
            self.cur_head = 0;
            match self.next_occupied_bucket() {
                Some(abs) => self.activate(abs),
                None => {
                    // Everything pending lives beyond the horizon.
                    // fd-lint: allow(UH002, HP001, reason = "ensure_current checked len > 0, so an empty wheel implies a non-empty overflow heap; a panic here is a broken queue invariant, not an input")
                    let at = self.overflow.peek().expect("len > 0 but wheel empty").at;
                    self.activate(bucket_of(at));
                }
            }
        }
    }

    /// Make absolute bucket `abs` the active span: migrate overflow
    /// events that fell inside the new horizon, then sort the bucket's
    /// events into `current`.
    fn activate(&mut self, abs: u64) {
        self.cur_bucket = abs;
        while let Some(e) = self.overflow.peek() {
            let b = bucket_of(e.at);
            debug_assert!(b >= abs, "overflow behind the wheel");
            if b - abs >= BUCKET_COUNT as u64 {
                break;
            }
            let Some(e) = self.overflow.pop() else { break };
            let slot = (b as usize) & BUCKET_MASK;
            // fd-lint: allow(HP001, reason = "slot is masked with BUCKET_MASK, always within buckets")
            self.buckets[slot].push(e);
            // fd-lint: allow(HP001, reason = "slot >> 6 < WORDS because slot < BUCKET_COUNT")
            self.occupied[slot >> 6] |= 1u64 << (slot & 63);
        }
        let slot = (abs as usize) & BUCKET_MASK;
        // fd-lint: allow(HP001, reason = "slot >> 6 < WORDS because slot < BUCKET_COUNT")
        self.occupied[slot >> 6] &= !(1u64 << (slot & 63));
        // fd-lint: allow(HP001, reason = "slot is masked with BUCKET_MASK, always within buckets")
        std::mem::swap(&mut self.current, &mut self.buckets[slot]);
        self.current.sort_unstable_by_key(|e| (e.at, e.seq));
        self.cur_head = 0;
    }

    /// The nearest occupied bucket strictly after `cur_bucket`, as an
    /// absolute bucket index, via a circular bitmap scan.
    fn next_occupied_bucket(&self) -> Option<u64> {
        let start = ((self.cur_bucket as usize) + 1) & BUCKET_MASK;
        let first_word = start >> 6;
        for k in 0..=WORDS {
            let wi = (first_word + k) % WORDS;
            // fd-lint: allow(HP001, reason = "wi is reduced mod WORDS by the circular scan")
            let mut w = self.occupied[wi];
            if k == 0 {
                w &= !0u64 << (start & 63);
            }
            if k == WORDS {
                w &= !(!0u64 << (start & 63));
            }
            if w != 0 {
                let slot = (wi << 6) | w.trailing_zeros() as usize;
                let delta = (slot + BUCKET_COUNT - start) & BUCKET_MASK;
                return Some(self.cur_bucket + 1 + delta as u64);
            }
        }
        None
    }

    fn clear(&mut self) {
        self.current.clear();
        self.cur_head = 0;
        self.cur_bucket = 0;
        for (wi, word) in self.occupied.iter_mut().enumerate() {
            let mut w = *word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                self.buckets[(wi << 6) | bit].clear();
                w &= w - 1;
            }
            *word = 0;
        }
        self.inserts.clear();
        self.overflow.clear();
        self.len = 0;
        self.next_seq = 0;
    }
}

/// Deterministic event queue (see module docs for the two variants).
pub(crate) enum EventQueue<M> {
    Wheel(TimerWheel<M>),
    Classic {
        heap: BinaryHeap<QueuedEvent<M>>,
        next_seq: u64,
    },
}

impl<M> EventQueue<M> {
    /// An empty queue backed by the chosen implementation.
    pub fn with_impl(imp: QueueImpl) -> Self {
        match imp {
            QueueImpl::Wheel => EventQueue::Wheel(TimerWheel::new()),
            QueueImpl::Classic => EventQueue::Classic {
                heap: BinaryHeap::new(),
                next_seq: 0,
            },
        }
    }

    /// Schedule `kind` at time `at`, after everything already scheduled
    /// at that instant.
    // fd-lint: hot_path
    pub fn push(&mut self, at: Time, kind: EventKind<M>) {
        match self {
            EventQueue::Wheel(w) => w.push(at, kind),
            EventQueue::Classic { heap, next_seq } => {
                let seq = *next_seq;
                *next_seq += 1;
                heap.push(QueuedEvent { at, seq, kind });
            }
        }
    }

    /// Remove and return the earliest event, FIFO among ties.
    // fd-lint: hot_path
    pub fn pop(&mut self) -> Option<QueuedEvent<M>> {
        match self {
            EventQueue::Wheel(w) => w.pop(),
            EventQueue::Classic { heap, .. } => heap.pop(),
        }
    }

    /// The time of the next event without removing it. Takes `&mut self`
    /// because the wheel advances to the next occupied span to answer.
    pub fn peek_time(&mut self) -> Option<Time> {
        match self {
            EventQueue::Wheel(w) => w.peek_time(),
            EventQueue::Classic { heap, .. } => heap.peek().map(|e| e.at),
        }
    }

    /// Events currently scheduled.
    pub fn len(&self) -> usize {
        match self {
            EventQueue::Wheel(w) => w.len,
            EventQueue::Classic { heap, .. } => heap.len(),
        }
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pop the earliest event only if it is due at or before `bound`.
    /// The peek-then-pop pair lives here so callers never need a
    /// "peeked therefore non-empty" unwrap.
    pub fn pop_due(&mut self, bound: Time) -> Option<QueuedEvent<M>> {
        match self.peek_time() {
            Some(t) if t <= bound => self.pop(),
            _ => None,
        }
    }

    /// Drain every event due at the earliest pending timestamp (if that
    /// timestamp is at or before `bound`) into `out`, preserving strict
    /// `(at, seq)` order. Returns the number of events appended — 0 means
    /// nothing is due. The kernel's `run_until_time` loop uses this to
    /// amortize queue bookkeeping over a whole same-instant batch: at
    /// large n a single broadcast makes thousands of deliveries share one
    /// timestamp.
    pub fn pop_due_batch(&mut self, bound: Time, out: &mut Vec<QueuedEvent<M>>) -> usize {
        match self {
            EventQueue::Wheel(w) => w.pop_due_batch(bound, out),
            EventQueue::Classic { heap, .. } => {
                let Some(first) = heap.peek() else { return 0 };
                if first.at > bound {
                    return 0;
                }
                let t = first.at;
                let start = out.len();
                while let Some(e) = heap.peek() {
                    if e.at != t {
                        break;
                    }
                    // fd-lint: allow(UH002, reason = "peek just returned Some on the same heap")
                    out.push(heap.pop().expect("peeked non-empty"));
                }
                out.len() - start
            }
        }
    }

    /// Empty the queue and restart sequence numbering, keeping span,
    /// bucket, and heap capacity warm for the next run.
    pub fn reset(&mut self) {
        match self {
            EventQueue::Wheel(w) => w.clear(),
            EventQueue::Classic { heap, next_seq } => {
                heap.clear();
                *next_seq = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash(pid: usize) -> EventKind<()> {
        EventKind::Crash {
            pid: ProcessId(pid),
        }
    }

    fn both() -> [EventQueue<()>; 2] {
        [
            EventQueue::with_impl(QueueImpl::Wheel),
            EventQueue::with_impl(QueueImpl::Classic),
        ]
    }

    fn drain_pids(q: &mut EventQueue<()>) -> Vec<(Time, usize)> {
        std::iter::from_fn(|| {
            q.pop().map(|e| match e.kind {
                EventKind::Crash { pid } => (e.at, pid.index()),
                _ => unreachable!(),
            })
        })
        .collect()
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in both() {
            q.push(Time(30), crash(0));
            q.push(Time(10), crash(1));
            q.push(Time(20), crash(2));
            let order: Vec<Time> = std::iter::from_fn(|| q.pop().map(|e| e.at)).collect();
            assert_eq!(order, vec![Time(10), Time(20), Time(30)]);
        }
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for mut q in both() {
            for i in 0..5 {
                q.push(Time(7), crash(i));
            }
            let pids: Vec<usize> = drain_pids(&mut q).into_iter().map(|(_, p)| p).collect();
            assert_eq!(pids, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn peek_matches_pop() {
        for mut q in both() {
            assert_eq!(q.peek_time(), None);
            q.push(Time(5), crash(0));
            q.push(Time(3), crash(1));
            assert_eq!(q.peek_time(), Some(Time(3)));
            assert_eq!(q.len(), 2);
            q.pop();
            assert_eq!(q.peek_time(), Some(Time(5)));
            q.pop();
            assert!(q.is_empty());
        }
    }

    /// Interleaved push/pop with ties at span boundaries, across the
    /// wheel/overflow horizon: the wheel must agree with the classic
    /// heap event for event.
    #[test]
    fn interleaved_push_pop_matches_classic() {
        let horizon = (BUCKET_COUNT as u64) << BUCKET_SHIFT;
        // A deterministic but irregular schedule touching every regime:
        // same-tick ties, same-span inserts, far-future overflow events,
        // and pops interleaved with pushes.
        let mut wheel = EventQueue::with_impl(QueueImpl::Wheel);
        let mut classic = EventQueue::with_impl(QueueImpl::Classic);
        let mut pid = 0usize;
        let mut x = 0x243f_6a88_85a3_08d3u64; // deterministic LCG-ish stream
        let mut nextx = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x
        };
        let mut now = 0u64;
        let mut log_wheel = Vec::new();
        let mut log_classic = Vec::new();
        for round in 0..2000 {
            let r = nextx();
            let burst = (r % 4) as usize;
            for _ in 0..=burst {
                let delta = match nextx() % 10 {
                    0 => 0,                           // same-tick tie
                    1..=5 => 1 + nextx() % 4096,      // near future (in-wheel)
                    6..=8 => nextx() % (horizon / 2), // mid wheel
                    _ => horizon + nextx() % horizon, // beyond the horizon
                };
                wheel.push(Time(now + delta), crash(pid));
                classic.push(Time(now + delta), crash(pid));
                pid += 1;
            }
            if round % 3 != 0 {
                let a = wheel.pop();
                let b = classic.pop();
                match (a, b) {
                    (Some(ea), Some(eb)) => {
                        assert_eq!((ea.at, ea.seq), (eb.at, eb.seq), "round {round}");
                        now = ea.at.0;
                        log_wheel.push((ea.at, ea.seq));
                        log_classic.push((eb.at, eb.seq));
                    }
                    (None, None) => {}
                    other => panic!("one queue empty, the other not: {other:?}"),
                }
            }
            assert_eq!(wheel.len(), classic.len(), "round {round}");
        }
        // Drain the rest.
        loop {
            match (wheel.pop(), classic.pop()) {
                (Some(ea), Some(eb)) => assert_eq!((ea.at, ea.seq), (eb.at, eb.seq)),
                (None, None) => break,
                other => panic!("length mismatch at drain: {other:?}"),
            }
        }
        assert_eq!(log_wheel, log_classic);
    }

    /// Seq tie-breaks survive crossing the wheel/overflow boundary: two
    /// events at the same far-future tick, pushed in order, must pop in
    /// order after migrating from the overflow heap into the wheel.
    #[test]
    fn overflow_migration_preserves_seq_ties() {
        let horizon = (BUCKET_COUNT as u64) << BUCKET_SHIFT;
        let far = Time(horizon * 3 + 17);
        for mut q in both() {
            for i in 0..8 {
                q.push(far, crash(i));
            }
            // A near event first, so the wheel turns before the far ones.
            q.push(Time(1), crash(100));
            let order = drain_pids(&mut q);
            assert_eq!(order[0], (Time(1), 100));
            let far_order: Vec<usize> = order[1..].iter().map(|&(_, p)| p).collect();
            assert_eq!(far_order, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        }
    }

    /// Pushing into the already-active span (e.g. a loopback delivery
    /// one tick from now) keeps order against events already there.
    #[test]
    fn same_span_insert_keeps_order() {
        for mut q in both() {
            q.push(Time(10), crash(0));
            q.push(Time(30), crash(1));
            assert_eq!(q.peek_time(), Some(Time(10)));
            let first = q.pop().unwrap();
            assert_eq!(first.at, Time(10));
            // Now push between the popped event and the pending one,
            // plus a tie with the pending one (must lose by seq).
            q.push(Time(20), crash(2));
            q.push(Time(30), crash(3));
            let order = drain_pids(&mut q);
            assert_eq!(order, vec![(Time(20), 2), (Time(30), 1), (Time(30), 3)]);
        }
    }

    #[test]
    fn reset_restarts_sequence_numbering() {
        for mut q in both() {
            q.push(Time(5), crash(0));
            q.push(Time(900_000_000), crash(1)); // deep overflow
            q.pop();
            q.reset();
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
            // Ties after reset break exactly as in a fresh queue.
            q.push(Time(7), crash(10));
            q.push(Time(7), crash(11));
            let order = drain_pids(&mut q);
            assert_eq!(order, vec![(Time(7), 10), (Time(7), 11)]);
        }
    }

    /// Events landing at exactly the horizon boundary (`now + 256×1024`
    /// ticks) must overflow, events one tick inside must bucket, and the
    /// three groups must still pop in strict `(at, seq)` order. This is
    /// the off-by-one regime a `<` vs `<=` slip in `push` would corrupt.
    #[test]
    fn horizon_boundary_is_exact() {
        let horizon = (BUCKET_COUNT as u64) << BUCKET_SHIFT;
        for mut q in both() {
            // just inside (last in-wheel bucket), exactly at, just past
            q.push(Time(horizon - 1), crash(0));
            q.push(Time(horizon), crash(1));
            q.push(Time(horizon + 1), crash(2));
            // ties straddling the boundary, pushed out of time order
            q.push(Time(horizon), crash(3));
            q.push(Time(horizon - 1), crash(4));
            let order = drain_pids(&mut q);
            assert_eq!(
                order,
                vec![
                    (Time(horizon - 1), 0),
                    (Time(horizon - 1), 4),
                    (Time(horizon), 1),
                    (Time(horizon), 3),
                    (Time(horizon + 1), 2),
                ]
            );
        }
    }

    /// Large-n regime: thousands of same-instant events (one broadcast's
    /// deliveries) pushed while the target span is already active, with
    /// a tail beyond the horizon. Wheel must match classic exactly.
    #[test]
    fn large_n_same_instant_burst_matches_classic() {
        let horizon = (BUCKET_COUNT as u64) << BUCKET_SHIFT;
        let mut wheel = EventQueue::with_impl(QueueImpl::Wheel);
        let mut classic = EventQueue::with_impl(QueueImpl::Classic);
        for q in [&mut wheel, &mut classic] {
            q.push(Time(5), crash(9999));
            q.pop(); // activate span 0
            for i in 0..4096 {
                q.push(Time(7), crash(i)); // same-span burst (the old O(span) path)
            }
            for i in 0..64 {
                q.push(Time(horizon + 7), crash(10000 + i)); // overflow ties
            }
            q.push(Time(6), crash(8888)); // lands before the burst
        }
        let a = drain_pids(&mut wheel);
        let b = drain_pids(&mut classic);
        assert_eq!(a, b);
        assert_eq!(a[0], (Time(6), 8888));
        assert_eq!(a[1], (Time(7), 0));
        assert_eq!(a[4096], (Time(7), 4095));
        assert_eq!(a[4097], (Time(horizon + 7), 10000));
    }

    /// `pop_due_batch` drains exactly the earliest timestamp's events, in
    /// seq order, and agrees between the two implementations — including
    /// when the batch is split across `current` and `inserts`.
    #[test]
    fn pop_due_batch_matches_pop_due() {
        for mut q in both() {
            q.push(Time(10), crash(0));
            q.push(Time(10), crash(1));
            q.push(Time(20), crash(2));
            // Activate the span, then land more ties at t=10 (these go
            // through the wheel's insert path).
            q.pop(); // (10, 0)
            q.push(Time(10), crash(3));
            q.push(Time(10), crash(4));
            let mut out = Vec::new();
            assert_eq!(q.pop_due_batch(Time(15), &mut out), 3);
            let pids: Vec<usize> = out
                .iter()
                .map(|e| match e.kind {
                    EventKind::Crash { pid } => pid.index(),
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(pids, vec![1, 3, 4]);
            // t=20 is beyond the bound: nothing more drains.
            out.clear();
            assert_eq!(q.pop_due_batch(Time(15), &mut out), 0);
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop_due_batch(Time(20), &mut out), 1);
            assert!(q.is_empty());
        }
    }

    /// A randomized cross-check: a long interleaved schedule drained
    /// entirely through `pop_due_batch` must equal the classic heap's
    /// event order.
    #[test]
    fn batch_drain_matches_classic_order() {
        let horizon = (BUCKET_COUNT as u64) << BUCKET_SHIFT;
        let mut wheel = EventQueue::with_impl(QueueImpl::Wheel);
        let mut classic = EventQueue::with_impl(QueueImpl::Classic);
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mut nextx = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x
        };
        let mut now = 0u64;
        let mut pid = 0usize;
        for _ in 0..500 {
            for _ in 0..(nextx() % 6) {
                let delta = match nextx() % 8 {
                    0 => 0,
                    1..=4 => nextx() % 2048,
                    5..=6 => nextx() % horizon,
                    _ => horizon + nextx() % (horizon / 4),
                };
                let at = Time(now + delta);
                wheel.push(at, crash(pid));
                classic.push(at, crash(pid));
                pid += 1;
            }
            let mut wa = Vec::new();
            let mut ca = Vec::new();
            let bound = Time(now + nextx() % 4096);
            wheel.pop_due_batch(bound, &mut wa);
            classic.pop_due_batch(bound, &mut ca);
            let keys =
                |v: &Vec<QueuedEvent<()>>| v.iter().map(|e| (e.at, e.seq)).collect::<Vec<_>>();
            assert_eq!(keys(&wa), keys(&ca));
            if let Some(e) = wa.last() {
                now = e.at.0;
            } else {
                now += 1024;
            }
            assert_eq!(wheel.len(), classic.len());
        }
    }

    /// Reset must drop pending active-span inserts too — a stale insert
    /// surviving into the next run would corrupt replay determinism.
    #[test]
    fn reset_clears_active_span_inserts() {
        let mut q = EventQueue::with_impl(QueueImpl::Wheel);
        q.push(Time(5), crash(0));
        q.pop(); // span 0 active
        q.push(Time(6), crash(1)); // goes to the inserts heap
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time(7), crash(2));
        let order = drain_pids(&mut q);
        assert_eq!(order, vec![(Time(7), 2)]);
    }

    #[test]
    fn msg_slot_shares_and_takes() {
        let slot: MsgSlot<String> = MsgSlot::Inline("a".into());
        assert_eq!(slot.get(), "a");
        assert_eq!(slot.take(), "a");
        let rc = Rc::new("b".to_string());
        let s1 = MsgSlot::Shared(Rc::clone(&rc));
        let s2 = MsgSlot::Shared(rc);
        assert_eq!(s1.get(), "b");
        assert_eq!(s1.take(), "b"); // clones: s2 still shares
        assert_eq!(s2.take(), "b"); // last holder: moves out
    }

    #[test]
    fn queue_impl_labels() {
        assert_eq!(QueueImpl::Wheel.label(), "wheel");
        assert_eq!(QueueImpl::Classic.label(), "classic");
        assert_eq!(QueueImpl::default(), QueueImpl::Wheel);
    }
}
