//! The kernel event queue.
//!
//! A binary min-heap ordered by `(time, sequence)`. The monotonically
//! increasing sequence number breaks ties deterministically: two events
//! scheduled for the same instant fire in scheduling order, so identical
//! seeds always replay identical runs.

use crate::actor::{TimerId, TimerTag};
use crate::process::ProcessId;
use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What a scheduled event does when it fires.
#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// Deliver `msg` from `from` to `to`.
    Deliver {
        from: ProcessId,
        to: ProcessId,
        msg: M,
    },
    /// Fire timer `id` with `tag` at `pid`.
    Timer {
        pid: ProcessId,
        id: TimerId,
        tag: TimerTag,
    },
    /// Crash `pid` (crash-stop).
    Crash { pid: ProcessId },
}

#[derive(Debug)]
pub(crate) struct QueuedEvent<M> {
    pub at: Time,
    pub seq: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for QueuedEvent<M> {}

impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}
impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic event queue.
#[derive(Debug)]
pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<QueuedEvent<M>>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub fn push(&mut self, at: Time, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedEvent { at, seq, kind });
    }

    pub fn pop(&mut self) -> Option<QueuedEvent<M>> {
        self.heap.pop()
    }

    /// The time of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[allow(dead_code)] // used by unit tests and debugging helpers
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash(pid: usize) -> EventKind<()> {
        EventKind::Crash {
            pid: ProcessId(pid),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.push(Time(30), crash(0));
        q.push(Time(10), crash(1));
        q.push(Time(20), crash(2));
        let order: Vec<Time> = std::iter::from_fn(|| q.pop().map(|e| e.at)).collect();
        assert_eq!(order, vec![Time(10), Time(20), Time(30)]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        for i in 0..5 {
            q.push(Time(7), crash(i));
        }
        let pids: Vec<usize> = std::iter::from_fn(|| {
            q.pop().map(|e| match e.kind {
                EventKind::Crash { pid } => pid.index(),
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(pids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Time(5), crash(0));
        q.push(Time(3), crash(1));
        assert_eq!(q.peek_time(), Some(Time(3)));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.peek_time(), Some(Time(5)));
        q.pop();
        assert!(q.is_empty());
    }
}
