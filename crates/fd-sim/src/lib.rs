//! # fd-sim — deterministic simulation of crash-prone message-passing systems
//!
//! The substrate for the `ecfd` workspace: a discrete-event simulator of
//! the system model used by Larrea, Fernández & Arévalo in *"Eventually
//! consistent failure detectors"* — a finite, totally ordered set of `n`
//! processes communicating over directed links, failing only by crashing
//! (permanently), with three link regimes:
//!
//! * **reliable asynchronous** links (the base model of §2.1),
//! * **eventually timely** links with a global stabilization time GST and
//!   an unknown bound Δ (the partial synchrony of §4 / \[6,8\]),
//! * **fair-lossy** links (the leader's output links in the Fig. 2
//!   transformation).
//!
//! Runs are fully deterministic given a seed: the event queue breaks time
//! ties by scheduling order and every source of randomness is derived from
//! the run seed via independent streams. The kernel records a [`Trace`]
//! (message events, crashes, protocol observations) and [`Metrics`]
//! (message counts by kind and round) which the rest of the workspace uses
//! to check the paper's properties and regenerate its complexity tables.
//!
//! ## Example
//!
//! ```
//! use fd_sim::prelude::*;
//!
//! struct Echo;
//! #[derive(Clone, Debug)]
//! struct Hello;
//! impl SimMessage for Hello {
//!     fn kind(&self) -> &'static str { "hello" }
//! }
//! impl Actor for Echo {
//!     type Msg = Hello;
//!     fn on_start(&mut self, ctx: &mut Context<'_, Hello>) {
//!         if ctx.me() == ProcessId(0) {
//!             ctx.send_to_others(Hello);
//!         }
//!     }
//!     fn on_message(&mut self, _ctx: &mut Context<'_, Hello>, _from: ProcessId, _m: Hello) {}
//!     fn on_timer(&mut self, _ctx: &mut Context<'_, Hello>, _t: TimerTag) {}
//! }
//!
//! let mut world = WorldBuilder::new(NetworkConfig::new(3)).seed(7).build(|_, _| Echo);
//! world.run_until_time(Time::from_millis(100));
//! assert_eq!(world.metrics().sent_of_kind("hello"), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod actor;
pub mod bench;
pub mod chaos;
pub mod event;
pub mod link;
pub mod metrics;
pub mod process;
pub mod rng;
pub mod sched;
pub mod storage;
pub mod time;
pub mod timeline;
pub mod topology;
pub mod trace;
pub mod world;

pub use actor::{expand_sends, Action, Actor, Context, SimMessage, TimerId, TimerTag};
pub use chaos::{Intervention, NetChange};
pub use event::QueueImpl;
pub use link::{DelayDist, LinkMangler, LinkModel};
pub use metrics::Metrics;
pub use process::{all_processes, ProcessId};
pub use sched::{
    CanonicalScheduler, ChoicePoint, EnabledEvent, EnabledKind, SchedChoice, SchedWorld, Scheduler,
};
pub use storage::{SimDisk, StorageConfig};
pub use time::{SimDuration, Time};
pub use timeline::{summary as trace_summary, Timeline};
pub use topology::NetworkConfig;
pub use trace::{DropReason, Fnv, Payload, Trace, TraceEvent, TraceKind};
pub use world::{TraceMode, World, WorldBuilder, WorldObs};

/// Convenient glob-import for downstream crates and examples.
pub mod prelude {
    pub use crate::actor::{Actor, Context, SimMessage, TimerId, TimerTag};
    pub use crate::link::{DelayDist, LinkModel};
    pub use crate::process::{all_processes, ProcessId};
    pub use crate::time::{SimDuration, Time};
    pub use crate::topology::NetworkConfig;
    pub use crate::trace::{Payload, Trace, TraceKind};
    pub use crate::world::{TraceMode, World, WorldBuilder, WorldObs};
}
