//! Link models.
//!
//! The paper uses three kinds of directed links:
//!
//! * **Reliable** links (§2.1): every message sent is eventually delivered,
//!   with no bound on delay in the asynchronous model.
//! * **Partially synchronous / eventually timely** links (§4, the model of
//!   Chandra–Toueg \[6\] and Dwork–Lynch–Stockmeyer \[8\]): after some finite
//!   *global stabilization time* GST, every message is delivered within an
//!   (unknown to the algorithm) bound Δ. Before GST, delays are arbitrary.
//! * **Fair-lossy** links (§4, the output links of the leader in Fig. 2):
//!   messages may be lost, but if infinitely many are sent, infinitely many
//!   are delivered.
//!
//! A [`LinkModel`] maps a send instant to an optional delivery instant,
//! sampling any randomness from the network RNG stream.

use crate::time::{SimDuration, Time};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution of message delays.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DelayDist {
    /// Always exactly this delay.
    Constant(SimDuration),
    /// Uniform in `[min, max]` (inclusive).
    Uniform {
        /// Smallest possible delay.
        min: SimDuration,
        /// Largest possible delay.
        max: SimDuration,
    },
    /// Mostly uniform in `[min, max]`, but with probability `spike_prob`
    /// the delay is instead uniform in `[max, spike_max]` — a crude heavy
    /// tail that exercises timeout adaptation.
    Spiky {
        /// Smallest base delay.
        min: SimDuration,
        /// Largest base delay.
        max: SimDuration,
        /// Probability of a spike.
        spike_prob: f64,
        /// Largest spike delay.
        spike_max: SimDuration,
    },
}

impl DelayDist {
    /// Sample a delay.
    pub fn sample(&self, rng: &mut SmallRng) -> SimDuration {
        match *self {
            DelayDist::Constant(d) => d,
            DelayDist::Uniform { min, max } => {
                debug_assert!(min <= max, "uniform delay with min > max");
                SimDuration(rng.gen_range(min.0..=max.0))
            }
            DelayDist::Spiky {
                min,
                max,
                spike_prob,
                spike_max,
            } => {
                if rng.gen_bool(spike_prob.clamp(0.0, 1.0)) {
                    SimDuration(rng.gen_range(max.0..=spike_max.0.max(max.0)))
                } else {
                    SimDuration(rng.gen_range(min.0..=max.0))
                }
            }
        }
    }

    /// The largest delay this distribution can produce.
    pub fn upper_bound(&self) -> SimDuration {
        match *self {
            DelayDist::Constant(d) => d,
            DelayDist::Uniform { max, .. } => max,
            DelayDist::Spiky { max, spike_max, .. } => max.max(spike_max),
        }
    }

    /// Whether sampling this distribution never consumes the RNG —
    /// exactly the [`DelayDist::Constant`] case (a degenerate uniform
    /// still draws). Model-checked worlds require RNG-free delays: the
    /// network RNG is shared across links, so any draw makes its stream
    /// position depend on the delivery *order* the scheduler chose, and
    /// state hashes of equivalent interleavings would diverge.
    pub fn is_rng_free(&self) -> bool {
        matches!(self, DelayDist::Constant(_))
    }
}

/// Behaviour of one directed link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LinkModel {
    /// Reliable: never drops; delay drawn from `delay`.
    Reliable {
        /// The delay distribution.
        delay: DelayDist,
    },
    /// Eventually timely (partial synchrony): messages sent at or after
    /// `gst` are delivered within `bound`; messages sent before `gst` are
    /// dropped with probability `pre_drop` and otherwise delayed by
    /// `pre_delay` (which may be far larger than `bound`).
    EventuallyTimely {
        /// The global stabilization time.
        gst: Time,
        /// The post-GST delay bound (Δ).
        bound: SimDuration,
        /// Pre-GST delay distribution.
        pre_delay: DelayDist,
        /// Pre-GST drop probability.
        pre_drop: f64,
    },
    /// Fair-lossy: each message independently dropped with probability
    /// `drop`; surviving messages delayed by `delay`. Because drops are
    /// independent, infinitely many sends yield infinitely many
    /// deliveries almost surely — the paper's fairness condition.
    FairLossy {
        /// The delay distribution of surviving messages.
        delay: DelayDist,
        /// Independent per-message drop probability.
        drop: f64,
    },
    /// Drops every message. Used to model partitioned links in adversarial
    /// scenarios (not part of the paper's model, but useful for testing
    /// that completeness does not depend on a particular link).
    Dead,
    /// Piecewise behaviour over time: `phases[i].1` governs sends at
    /// instants in `[phases[i].0, phases[i+1].0)`. Expresses burst
    /// partitions, heal events, or degradation schedules that the purely
    /// probabilistic models cannot (e.g. "dead from 200 ms to 500 ms,
    /// reliable otherwise"). Phases must start at `Time::ZERO` and be
    /// strictly increasing.
    Phased(PhaseSchedule),
}

/// The schedule of a [`LinkModel::Phased`] link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSchedule {
    phases: Vec<(Time, LinkModel)>,
}

impl PhaseSchedule {
    /// Build a schedule. Panics if empty, not starting at time zero, not
    /// strictly increasing, or nested.
    pub fn new(phases: Vec<(Time, LinkModel)>) -> PhaseSchedule {
        assert!(!phases.is_empty(), "schedule must have at least one phase");
        assert_eq!(phases[0].0, Time::ZERO, "schedule must start at time zero");
        for w in phases.windows(2) {
            assert!(w[0].0 < w[1].0, "phase times must be strictly increasing");
        }
        assert!(
            phases
                .iter()
                .all(|(_, m)| !matches!(m, LinkModel::Phased(_))),
            "phased links cannot nest"
        );
        PhaseSchedule { phases }
    }

    /// The model governing a send at `now`.
    pub fn at(&self, now: Time) -> &LinkModel {
        let idx = self.phases.partition_point(|(t, _)| *t <= now);
        // fd-lint: allow(HP001, reason = "PhaseSchedule::new asserts a Time::ZERO first phase, so partition_point returns at least 1")
        &self.phases[idx - 1].1
    }

    /// The phases, for bound computations.
    pub fn phases(&self) -> &[(Time, LinkModel)] {
        &self.phases
    }
}

impl LinkModel {
    /// A reliable link with constant delay `d`.
    pub fn reliable_const(d: SimDuration) -> LinkModel {
        LinkModel::Reliable {
            delay: DelayDist::Constant(d),
        }
    }

    /// A reliable link with delay uniform in `[min, max]`.
    pub fn reliable_uniform(min: SimDuration, max: SimDuration) -> LinkModel {
        LinkModel::Reliable {
            delay: DelayDist::Uniform { min, max },
        }
    }

    /// An eventually timely link: chaotic (uniform up to `pre_max`, dropped
    /// with probability `pre_drop`) before `gst`, bounded by `bound` after.
    pub fn eventually_timely(
        gst: Time,
        bound: SimDuration,
        pre_max: SimDuration,
        pre_drop: f64,
    ) -> LinkModel {
        LinkModel::EventuallyTimely {
            gst,
            bound,
            pre_delay: DelayDist::Uniform {
                min: SimDuration(1),
                max: pre_max,
            },
            pre_drop,
        }
    }

    /// A fair-lossy link with uniform delays.
    pub fn fair_lossy(min: SimDuration, max: SimDuration, drop: f64) -> LinkModel {
        LinkModel::FairLossy {
            delay: DelayDist::Uniform { min, max },
            drop,
        }
    }

    /// A piecewise-scheduled link (see [`LinkModel::Phased`]).
    pub fn phased(phases: Vec<(Time, LinkModel)>) -> LinkModel {
        LinkModel::Phased(PhaseSchedule::new(phases))
    }

    /// A link that behaves like `healthy` except during `[from, until)`,
    /// when it is dead — a burst partition that heals.
    ///
    /// ```
    /// use fd_sim::{LinkModel, SimDuration, Time};
    /// use fd_sim::rng::derive_network_rng;
    ///
    /// let link = LinkModel::partitioned_during(
    ///     LinkModel::reliable_const(SimDuration::from_millis(2)),
    ///     Time::from_millis(100),
    ///     Time::from_millis(200),
    /// );
    /// let mut rng = derive_network_rng(0);
    /// assert!(link.deliver_at(Time::from_millis(50), &mut rng).is_some());
    /// assert!(link.deliver_at(Time::from_millis(150), &mut rng).is_none());
    /// assert!(link.deliver_at(Time::from_millis(250), &mut rng).is_some());
    /// ```
    pub fn partitioned_during(healthy: LinkModel, from: Time, until: Time) -> LinkModel {
        assert!(
            Time::ZERO < from && from < until,
            "partition window must be (0, from, until)"
        );
        LinkModel::phased(vec![
            (Time::ZERO, healthy.clone()),
            (from, LinkModel::Dead),
            (until, healthy),
        ])
    }

    /// Given a send at `now`, decide when (if ever) the message arrives.
    pub fn deliver_at(&self, now: Time, rng: &mut SmallRng) -> Option<Time> {
        match *self {
            LinkModel::Reliable { delay } => Some(now + delay.sample(rng)),
            LinkModel::EventuallyTimely {
                gst,
                bound,
                pre_delay,
                pre_drop,
            } => {
                if now >= gst {
                    // Post-GST: uniform within the (unknown) bound, never
                    // dropped. A minimum of one tick keeps causality strict.
                    let d = SimDuration(rng.gen_range(1..=bound.0.max(1)));
                    Some(now + d)
                } else if rng.gen_bool(pre_drop.clamp(0.0, 1.0)) {
                    None
                } else {
                    Some(now + pre_delay.sample(rng))
                }
            }
            LinkModel::FairLossy { delay, drop } => {
                if rng.gen_bool(drop.clamp(0.0, 1.0)) {
                    None
                } else {
                    Some(now + delay.sample(rng))
                }
            }
            LinkModel::Dead => None,
            LinkModel::Phased(ref sched) => sched.at(now).deliver_at(now, rng),
        }
    }

    /// Whether [`deliver_at`](LinkModel::deliver_at) never consumes the
    /// RNG on this link, at any instant. Required of every link in a
    /// model-checked world (see [`DelayDist::is_rng_free`]): reliable
    /// constant-delay links and dead links qualify; anything with a drop
    /// probability or a sampled delay does not.
    pub fn is_rng_free(&self) -> bool {
        match *self {
            LinkModel::Reliable { delay } => delay.is_rng_free(),
            LinkModel::Dead => true,
            LinkModel::EventuallyTimely { .. } | LinkModel::FairLossy { .. } => false,
            LinkModel::Phased(ref sched) => sched.phases().iter().all(|(_, m)| m.is_rng_free()),
        }
    }

    /// Whether this link can ever drop a message.
    ///
    /// Note that lossiness says nothing about *fairness*: a
    /// [`LinkModel::Dead`] link is lossy but drops everything, while a
    /// fair-lossy link with `drop < 1` is lossy yet still delivers
    /// infinitely often. Use [`LinkModel::is_fair`] for the paper's §4
    /// fairness condition.
    pub fn is_lossy(&self) -> bool {
        match *self {
            LinkModel::Reliable { .. } => false,
            LinkModel::EventuallyTimely { pre_drop, .. } => pre_drop > 0.0,
            LinkModel::FairLossy { drop, .. } => drop > 0.0,
            LinkModel::Dead => true,
            LinkModel::Phased(ref sched) => sched.phases.iter().any(|(_, m)| m.is_lossy()),
        }
    }

    /// Whether this link satisfies the paper's §4 fairness condition: if
    /// infinitely many messages are sent, infinitely many are delivered.
    ///
    /// This is the property the ◇C transformations assume of leader
    /// output links; an earlier revision classified [`LinkModel::Dead`]
    /// together with fair-lossy links via [`LinkModel::is_lossy`], which
    /// conflates "may drop" with "drops everything". Fairness is decided
    /// by *eventual* behaviour:
    ///
    /// * Reliable and eventually-timely links are fair (post-GST every
    ///   message is delivered, whatever happened before GST).
    /// * Fair-lossy links are fair iff `drop < 1` — independent drops
    ///   then deliver infinitely often almost surely.
    /// * Dead links are not fair.
    /// * Phased links inherit the fairness of their final phase, which
    ///   governs all sends from its start onward (a partition that heals
    ///   is fair; a link that eventually dies is not).
    pub fn is_fair(&self) -> bool {
        match *self {
            LinkModel::Reliable { .. } => true,
            LinkModel::EventuallyTimely { .. } => true,
            LinkModel::FairLossy { drop, .. } => drop < 1.0,
            LinkModel::Dead => false,
            LinkModel::Phased(ref sched) => {
                let (_, last) = sched.phases.last().expect("schedules are non-empty");
                last.is_fair()
            }
        }
    }
}

impl Default for LinkModel {
    /// A mildly jittery reliable link: uniform delay in \[1, 5\] ms.
    fn default() -> Self {
        LinkModel::reliable_uniform(SimDuration::from_millis(1), SimDuration::from_millis(5))
    }
}

/// Link-layer message mangling, applied on top of every non-loopback
/// link's base model while installed (see
/// [`NetChange::SetMangler`](crate::chaos::NetChange::SetMangler)).
///
/// A mangler models a misbehaving network layer rather than a link
/// *regime*: the base [`LinkModel`] first decides whether and when a
/// message would arrive, and the mangler then perturbs that verdict —
/// dropping the message outright, skewing its delivery time (bounded
/// reordering: a skewed message can overtake or be overtaken by its
/// neighbours within `skew`), or duplicating it. All randomness is drawn
/// from the network RNG stream in a fixed order (drop, then reorder,
/// then duplicate), so runs remain byte-identical for a given seed and
/// schedule. Loopback sends (`from == to`) are never mangled — protocol
/// components rely on self-delivery for internal scheduling.
///
/// Probabilities are clamped to `[0, 1]` at draw time; a probability of
/// zero skips its RNG draw entirely.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkMangler {
    /// Per-message drop probability (in addition to base-model loss).
    pub drop: f64,
    /// Probability of enqueueing a second delivery of the message.
    pub duplicate: f64,
    /// Probability of skewing the delivery time by up to `skew`.
    pub reorder: f64,
    /// Largest extra delay a reorder or duplicate offset can add; draws
    /// are uniform in `[1, skew]` ticks (a zero `skew` acts as one tick).
    pub skew: SimDuration,
}

impl LinkMangler {
    /// A mangler that perturbs nothing (all probabilities zero).
    pub fn noop() -> LinkMangler {
        LinkMangler {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            skew: SimDuration(1),
        }
    }

    /// Whether this mangler can ever alter a delivery.
    pub fn is_noop(&self) -> bool {
        self.drop <= 0.0 && self.duplicate <= 0.0 && self.reorder <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_network_rng;

    fn rng() -> SmallRng {
        derive_network_rng(1)
    }

    #[test]
    fn constant_delay_is_exact() {
        let m = LinkModel::reliable_const(SimDuration::from_millis(2));
        let t = m.deliver_at(Time::from_millis(10), &mut rng()).unwrap();
        assert_eq!(t, Time::from_millis(12));
    }

    #[test]
    fn uniform_delay_within_bounds() {
        let m = LinkModel::reliable_uniform(SimDuration(10), SimDuration(20));
        let mut r = rng();
        for _ in 0..1000 {
            let t = m.deliver_at(Time(100), &mut r).unwrap();
            assert!(t >= Time(110) && t <= Time(120), "{t}");
        }
    }

    #[test]
    fn eventually_timely_respects_bound_after_gst() {
        let gst = Time::from_millis(50);
        let bound = SimDuration::from_millis(3);
        let m = LinkModel::eventually_timely(gst, bound, SimDuration::from_millis(500), 0.5);
        let mut r = rng();
        for _ in 0..1000 {
            let sent = Time::from_millis(60);
            let t = m
                .deliver_at(sent, &mut r)
                .expect("post-GST messages are never dropped");
            assert!(t > sent && t <= sent + bound);
        }
    }

    #[test]
    fn eventually_timely_pre_gst_can_drop_and_lag() {
        let gst = Time::from_millis(50);
        let m = LinkModel::eventually_timely(
            gst,
            SimDuration::from_millis(3),
            SimDuration::from_millis(500),
            0.5,
        );
        let mut r = rng();
        let mut drops = 0;
        let mut late = 0;
        for _ in 0..2000 {
            match m.deliver_at(Time::ZERO, &mut r) {
                None => drops += 1,
                Some(t) if t > Time::ZERO + SimDuration::from_millis(3) => late += 1,
                Some(_) => {}
            }
        }
        assert!(drops > 500, "expected ~50% pre-GST drops, got {drops}");
        assert!(
            late > 500,
            "expected many pre-GST deliveries beyond the bound, got {late}"
        );
    }

    #[test]
    fn fair_lossy_delivers_infinitely_often() {
        let m = LinkModel::fair_lossy(SimDuration(1), SimDuration(5), 0.9);
        let mut r = rng();
        let delivered = (0..10_000)
            .filter(|_| m.deliver_at(Time::ZERO, &mut r).is_some())
            .count();
        assert!(
            delivered > 500,
            "90% loss still lets ~10% through, got {delivered}"
        );
    }

    #[test]
    fn dead_link_drops_everything() {
        let mut r = rng();
        assert!(LinkModel::Dead.deliver_at(Time::ZERO, &mut r).is_none());
        assert!(LinkModel::Dead.is_lossy());
    }

    #[test]
    fn lossiness_classification() {
        assert!(!LinkModel::default().is_lossy());
        assert!(LinkModel::fair_lossy(SimDuration(1), SimDuration(2), 0.1).is_lossy());
        assert!(!LinkModel::fair_lossy(SimDuration(1), SimDuration(2), 0.0).is_lossy());
    }

    /// Regression: `Dead` used to be classified only via `is_lossy`,
    /// which also returns `true` for genuinely fair-lossy links — a dead
    /// link is lossy but must never count as fair (§4 fairness demands
    /// infinitely many deliveries from infinitely many sends).
    #[test]
    fn fairness_classification_separates_dead_from_fair_lossy() {
        assert!(LinkModel::default().is_fair());
        assert!(LinkModel::reliable_const(SimDuration(1)).is_fair());
        assert!(
            LinkModel::eventually_timely(
                Time::from_millis(50),
                SimDuration(3),
                SimDuration(500),
                1.0
            )
            .is_fair(),
            "pre-GST chaos does not break fairness; post-GST delivers everything"
        );
        let lossy = LinkModel::fair_lossy(SimDuration(1), SimDuration(2), 0.9);
        assert!(lossy.is_lossy() && lossy.is_fair(), "fair-lossy is both");
        assert!(
            !LinkModel::fair_lossy(SimDuration(1), SimDuration(2), 1.0).is_fair(),
            "drop probability 1.0 degenerates to a dead link"
        );
        let dead = LinkModel::Dead;
        assert!(
            dead.is_lossy() && !dead.is_fair(),
            "dead is lossy but not fair"
        );
    }

    #[test]
    fn spiky_delay_spikes() {
        let d = DelayDist::Spiky {
            min: SimDuration(1),
            max: SimDuration(10),
            spike_prob: 0.3,
            spike_max: SimDuration(1000),
        };
        let mut r = rng();
        let spikes = (0..5000)
            .filter(|_| d.sample(&mut r) > SimDuration(10))
            .count();
        assert!(spikes > 1000 && spikes < 2000, "spike count {spikes}");
        assert_eq!(d.upper_bound(), SimDuration(1000));
    }
}

#[cfg(test)]
mod phased_tests {
    use super::*;
    use crate::rng::derive_network_rng;

    #[test]
    fn schedule_selects_by_time() {
        let sched = PhaseSchedule::new(vec![
            (Time::ZERO, LinkModel::reliable_const(SimDuration(5))),
            (Time::from_millis(100), LinkModel::Dead),
            (
                Time::from_millis(200),
                LinkModel::reliable_const(SimDuration(9)),
            ),
        ]);
        assert_eq!(
            *sched.at(Time::ZERO),
            LinkModel::reliable_const(SimDuration(5))
        );
        assert_eq!(
            *sched.at(Time::from_millis(99)),
            LinkModel::reliable_const(SimDuration(5))
        );
        assert_eq!(*sched.at(Time::from_millis(100)), LinkModel::Dead);
        assert_eq!(*sched.at(Time::from_millis(150)), LinkModel::Dead);
        assert_eq!(
            *sched.at(Time::from_millis(500)),
            LinkModel::reliable_const(SimDuration(9))
        );
    }

    #[test]
    fn partition_window_drops_then_heals() {
        let m = LinkModel::partitioned_during(
            LinkModel::reliable_const(SimDuration(3)),
            Time::from_millis(10),
            Time::from_millis(20),
        );
        let mut rng = derive_network_rng(1);
        assert!(m.deliver_at(Time::from_millis(5), &mut rng).is_some());
        assert!(m.deliver_at(Time::from_millis(10), &mut rng).is_none());
        assert!(m.deliver_at(Time::from_millis(19), &mut rng).is_none());
        assert!(m.deliver_at(Time::from_millis(20), &mut rng).is_some());
    }

    #[test]
    fn phased_lossiness_is_the_union() {
        let healthy = LinkModel::reliable_const(SimDuration(1));
        assert!(LinkModel::partitioned_during(
            healthy.clone(),
            Time::from_millis(1),
            Time::from_millis(2)
        )
        .is_lossy());
        let m = LinkModel::phased(vec![(Time::ZERO, healthy)]);
        assert!(!m.is_lossy());
    }

    /// Fairness of a phased link follows its *final* phase — the one
    /// governing all sends from some point on.
    #[test]
    fn phased_fairness_follows_the_final_phase() {
        let healthy = LinkModel::reliable_const(SimDuration(1));
        let heals = LinkModel::partitioned_during(
            healthy.clone(),
            Time::from_millis(1),
            Time::from_millis(2),
        );
        assert!(
            heals.is_lossy() && heals.is_fair(),
            "a partition that heals is fair despite the dead window"
        );
        let dies = LinkModel::phased(vec![
            (Time::ZERO, healthy),
            (Time::from_millis(1), LinkModel::Dead),
        ]);
        assert!(
            !dies.is_fair(),
            "a link that eventually dies forever is not fair"
        );
    }

    #[test]
    #[should_panic(expected = "cannot nest")]
    fn nesting_rejected() {
        let inner = LinkModel::phased(vec![(Time::ZERO, LinkModel::Dead)]);
        let _ = LinkModel::phased(vec![(Time::ZERO, inner)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_schedule_rejected() {
        let _ = PhaseSchedule::new(vec![
            (Time::ZERO, LinkModel::Dead),
            (Time::ZERO, LinkModel::Dead),
        ]);
    }
}
