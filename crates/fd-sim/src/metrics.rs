//! Run metrics: message and event counters.
//!
//! Metrics are always collected (they are cheap, unlike full traces) and
//! drive the paper's message-complexity experiments: messages per round
//! per protocol (§5.4) and periodic messages per interval for the failure
//! detectors and the Fig. 2 transformation (§4).

use crate::process::ProcessId;
use std::collections::HashMap;

/// Counters accumulated over one run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    sent_total: u64,
    delivered_total: u64,
    dropped_total: u64,
    events_processed: u64,
    sent_by_kind: HashMap<&'static str, u64>,
    sent_by_kind_round: HashMap<(&'static str, u64), u64>,
    sent_by_process: HashMap<ProcessId, u64>,
}

impl Metrics {
    pub(crate) fn record_sent(&mut self, from: ProcessId, kind: &'static str, round: Option<u64>) {
        self.sent_total += 1;
        *self.sent_by_kind.entry(kind).or_default() += 1;
        *self.sent_by_process.entry(from).or_default() += 1;
        if let Some(r) = round {
            *self.sent_by_kind_round.entry((kind, r)).or_default() += 1;
        }
    }

    pub(crate) fn record_delivered(&mut self) {
        self.delivered_total += 1;
    }

    pub(crate) fn record_dropped(&mut self) {
        self.dropped_total += 1;
    }

    pub(crate) fn record_event(&mut self) {
        self.events_processed += 1;
    }

    /// Total messages sent.
    pub fn sent_total(&self) -> u64 {
        self.sent_total
    }

    /// Total messages delivered.
    pub fn delivered_total(&self) -> u64 {
        self.delivered_total
    }

    /// Total messages lost (link drops + deliveries to crashed processes).
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total
    }

    /// Total kernel events processed.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Messages sent with the given kind label.
    pub fn sent_of_kind(&self, kind: &str) -> u64 {
        self.sent_by_kind
            .iter()
            .filter(|(k, _)| **k == kind)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Messages sent with the given kind label in the given round.
    pub fn sent_of_kind_in_round(&self, kind: &str, round: u64) -> u64 {
        self.sent_by_kind_round
            .iter()
            .filter(|((k, r), _)| *k == kind && *r == round)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Messages sent in the given round, all kinds.
    pub fn sent_in_round(&self, round: u64) -> u64 {
        self.sent_by_kind_round
            .iter()
            .filter(|((_, r), _)| *r == round)
            .map(|(_, v)| *v)
            .sum()
    }

    /// All round numbers that appear in round-tagged sends, sorted.
    pub fn rounds(&self) -> Vec<u64> {
        let mut rs: Vec<u64> = self.sent_by_kind_round.keys().map(|(_, r)| *r).collect();
        rs.sort_unstable();
        rs.dedup();
        rs
    }

    /// Messages sent by one process.
    pub fn sent_by(&self, pid: ProcessId) -> u64 {
        self.sent_by_process.get(&pid).copied().unwrap_or(0)
    }

    /// All message kinds seen, sorted by label.
    pub fn kinds(&self) -> Vec<&'static str> {
        let mut ks: Vec<&'static str> = self.sent_by_kind.keys().copied().collect();
        ks.sort_unstable();
        ks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::default();
        m.record_sent(ProcessId(0), "hb", None);
        m.record_sent(ProcessId(0), "est", Some(1));
        m.record_sent(ProcessId(1), "est", Some(1));
        m.record_sent(ProcessId(1), "est", Some(2));
        m.record_delivered();
        m.record_dropped();
        m.record_event();

        assert_eq!(m.sent_total(), 4);
        assert_eq!(m.delivered_total(), 1);
        assert_eq!(m.dropped_total(), 1);
        assert_eq!(m.events_processed(), 1);
        assert_eq!(m.sent_of_kind("hb"), 1);
        assert_eq!(m.sent_of_kind("est"), 3);
        assert_eq!(m.sent_of_kind_in_round("est", 1), 2);
        assert_eq!(m.sent_in_round(2), 1);
        assert_eq!(m.rounds(), vec![1, 2]);
        assert_eq!(m.sent_by(ProcessId(1)), 2);
        assert_eq!(m.sent_by(ProcessId(9)), 0);
        assert_eq!(m.kinds(), vec!["est", "hb"]);
    }
}
