//! Run metrics: message and event counters.
//!
//! Metrics are always collected (they are cheap, unlike full traces) and
//! drive the paper's message-complexity experiments: messages per round
//! per protocol (§5.4) and periodic messages per interval for the failure
//! detectors and the Fig. 2 transformation (§4).
//!
//! `record_sent` runs once per message on the kernel hot path, so the
//! backing structures are chosen for that path: per-kind counts live in
//! a small vector scanned with a pointer-equality fast path (a run sees
//! a handful of distinct `&'static str` labels), per-process counts are
//! a plain index, and only the sparse per-round table is a hash map —
//! with a multiply-xor hasher instead of the default SipHash.

use crate::process::ProcessId;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A fast, non-cryptographic multiply-xor hasher (FxHash-style) for the
/// kernel's internal tables. Not DoS-resistant — keys are protocol
/// labels and round numbers, never attacker-controlled.
#[derive(Default)]
pub(crate) struct FxHasher(u64);

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, x: u64) {
        self.0 = (self.0.rotate_left(5) ^ x).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let mut last = 0u64;
        for &b in chunks.remainder() {
            last = (last << 8) | b as u64;
        }
        self.add(last ^ ((bytes.len() as u64) << 56));
    }

    #[inline]
    fn write_u8(&mut self, x: u8) {
        self.add(x as u64);
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.add(x);
    }

    #[inline]
    fn write_usize(&mut self, x: usize) {
        self.add(x as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

pub(crate) type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Label equality with a pointer fast path: kind labels are `&'static
/// str` literals, so repeat sends of the same kind compare in two
/// integer comparisons; content equality is the correctness fallback
/// for distinct instantiations of the same literal.
#[inline]
fn label_eq(a: &'static str, b: &'static str) -> bool {
    (std::ptr::eq(a.as_ptr(), b.as_ptr()) && a.len() == b.len()) || a == b
}

/// Counters accumulated over one run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    sent_total: u64,
    delivered_total: u64,
    dropped_total: u64,
    events_processed: u64,
    mangled_dropped: u64,
    duplicated: u64,
    reordered: u64,
    /// `(kind, count)`, insertion-ordered; a run sees few distinct kinds.
    sent_by_kind: Vec<(&'static str, u64)>,
    sent_by_kind_round: HashMap<(&'static str, u64), u64, FxBuildHasher>,
    /// Indexed by process id.
    sent_by_process: Vec<u64>,
}

impl Metrics {
    /// Pre-size the per-process counters for an `n`-process world, so
    /// the hot path never resizes mid-run. Safe to skip — `record_sent`
    /// still grows on demand — but at n = 4096 the demand-growth would
    /// land in the first heartbeat burst.
    pub(crate) fn presize(&mut self, n: usize) {
        if self.sent_by_process.len() < n {
            self.sent_by_process.resize(n, 0);
        }
    }

    pub(crate) fn record_sent(&mut self, from: ProcessId, kind: &'static str, round: Option<u64>) {
        self.sent_total += 1;
        match self
            .sent_by_kind
            .iter_mut()
            .find(|(k, _)| label_eq(k, kind))
        {
            Some(slot) => slot.1 += 1,
            None => self.sent_by_kind.push((kind, 1)),
        }
        let idx = from.index();
        if idx >= self.sent_by_process.len() {
            self.sent_by_process.resize(idx + 1, 0);
        }
        // fd-lint: allow(HP001, reason = "the branch above just resized sent_by_process to idx + 1")
        self.sent_by_process[idx] += 1;
        if let Some(r) = round {
            *self.sent_by_kind_round.entry((kind, r)).or_default() += 1;
        }
    }

    pub(crate) fn record_delivered(&mut self) {
        self.delivered_total += 1;
    }

    pub(crate) fn record_dropped(&mut self) {
        self.dropped_total += 1;
    }

    pub(crate) fn record_event(&mut self) {
        self.events_processed += 1;
    }

    pub(crate) fn record_mangled_dropped(&mut self) {
        self.dropped_total += 1;
        self.mangled_dropped += 1;
    }

    pub(crate) fn record_duplicated(&mut self) {
        self.duplicated += 1;
    }

    pub(crate) fn record_reordered(&mut self) {
        self.reordered += 1;
    }

    /// Total messages sent.
    pub fn sent_total(&self) -> u64 {
        self.sent_total
    }

    /// Total messages delivered.
    pub fn delivered_total(&self) -> u64 {
        self.delivered_total
    }

    /// Total messages lost (link drops + deliveries to crashed processes).
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total
    }

    /// Total kernel events processed.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Messages dropped by the installed message mangler (a subset of
    /// [`dropped_total`](Metrics::dropped_total)).
    pub fn mangled_dropped_total(&self) -> u64 {
        self.mangled_dropped
    }

    /// Extra deliveries enqueued by the mangler's duplication.
    pub fn duplicated_total(&self) -> u64 {
        self.duplicated
    }

    /// Deliveries whose arrival time the mangler skewed.
    pub fn reordered_total(&self) -> u64 {
        self.reordered
    }

    /// Messages sent with the given kind label.
    pub fn sent_of_kind(&self, kind: &str) -> u64 {
        self.sent_by_kind
            .iter()
            .filter(|(k, _)| *k == kind)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Messages sent with the given kind label in the given round.
    pub fn sent_of_kind_in_round(&self, kind: &str, round: u64) -> u64 {
        self.sent_by_kind_round
            // fd-lint: allow(ND001, reason = "order-insensitive sum over the FxHashMap kept for the per-send hot path; the fold is commutative")
            .iter()
            .filter(|((k, r), _)| *k == kind && *r == round)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Messages sent in the given round, all kinds.
    pub fn sent_in_round(&self, round: u64) -> u64 {
        self.sent_by_kind_round
            // fd-lint: allow(ND001, reason = "order-insensitive sum over the FxHashMap kept for the per-send hot path; the fold is commutative")
            .iter()
            .filter(|((_, r), _)| *r == round)
            .map(|(_, v)| *v)
            .sum()
    }

    /// All round numbers that appear in round-tagged sends, sorted.
    pub fn rounds(&self) -> Vec<u64> {
        // fd-lint: allow(ND001, reason = "projection of the hot-path FxHashMap is sorted and deduped before anyone observes it")
        let mut rs: Vec<u64> = self.sent_by_kind_round.keys().map(|(_, r)| *r).collect();
        rs.sort_unstable();
        rs.dedup();
        rs
    }

    /// Messages sent by one process.
    pub fn sent_by(&self, pid: ProcessId) -> u64 {
        self.sent_by_process.get(pid.index()).copied().unwrap_or(0)
    }

    /// All message kinds seen, sorted by label.
    pub fn kinds(&self) -> Vec<&'static str> {
        let mut ks: Vec<&'static str> = self.sent_by_kind.iter().map(|(k, _)| *k).collect();
        ks.sort_unstable();
        ks.dedup();
        ks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::default();
        m.record_sent(ProcessId(0), "hb", None);
        m.record_sent(ProcessId(0), "est", Some(1));
        m.record_sent(ProcessId(1), "est", Some(1));
        m.record_sent(ProcessId(1), "est", Some(2));
        m.record_delivered();
        m.record_dropped();
        m.record_event();

        assert_eq!(m.sent_total(), 4);
        assert_eq!(m.delivered_total(), 1);
        assert_eq!(m.dropped_total(), 1);
        assert_eq!(m.events_processed(), 1);
        assert_eq!(m.sent_of_kind("hb"), 1);
        assert_eq!(m.sent_of_kind("est"), 3);
        assert_eq!(m.sent_of_kind_in_round("est", 1), 2);
        assert_eq!(m.sent_in_round(2), 1);
        assert_eq!(m.rounds(), vec![1, 2]);
        assert_eq!(m.sent_by(ProcessId(1)), 2);
        assert_eq!(m.sent_by(ProcessId(9)), 0);
        assert_eq!(m.kinds(), vec!["est", "hb"]);
    }

    /// Kind labels with equal content but (potentially) distinct static
    /// addresses must aggregate into one counter — the pointer compare
    /// is a fast path, never the semantics.
    #[test]
    fn kind_labels_compare_by_content() {
        let a: &'static str = "same";
        // Force a second str with identical bytes via a leaked box, so
        // the addresses genuinely differ.
        let b: &'static str = Box::leak("same".to_string().into_boxed_str());
        assert!(!std::ptr::eq(a.as_ptr(), b.as_ptr()));
        let mut m = Metrics::default();
        m.record_sent(ProcessId(0), a, None);
        m.record_sent(ProcessId(0), b, None);
        assert_eq!(m.sent_of_kind("same"), 2);
        assert_eq!(m.kinds(), vec!["same"]);
    }

    #[test]
    fn fx_hasher_is_deterministic_and_spreads() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(h(b"ec.estimate"), h(b"ec.estimate"));
        assert_ne!(h(b"ec.estimate"), h(b"ec.ack"));
        assert_ne!(h(b"a"), h(b"aa"));
        assert_ne!(h(b""), h(b"\0"));
    }
}
