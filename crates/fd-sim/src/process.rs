//! Process identities.
//!
//! The paper's system model is a finite, totally ordered set
//! `Π = {p₁, …, pₙ}` of processes. [`ProcessId`] is a dense index into that
//! set; the total order assumed by several algorithms (e.g. choosing the
//! *first* non-suspected process as leader) is the index order.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of a process: a dense index in `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }

    /// The next process in the ring order modulo `n`.
    pub fn successor(self, n: usize) -> ProcessId {
        ProcessId((self.0 + 1) % n)
    }

    /// The previous process in the ring order modulo `n`.
    pub fn predecessor(self, n: usize) -> ProcessId {
        ProcessId((self.0 + n - 1) % n)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(i: usize) -> Self {
        ProcessId(i)
    }
}

/// Iterate all processes of an `n`-process system in the total order.
pub fn all_processes(n: usize) -> impl DoubleEndedIterator<Item = ProcessId> + ExactSizeIterator {
    (0..n).map(ProcessId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_order_wraps() {
        assert_eq!(ProcessId(4).successor(5), ProcessId(0));
        assert_eq!(ProcessId(0).predecessor(5), ProcessId(4));
        assert_eq!(ProcessId(2).successor(5), ProcessId(3));
        assert_eq!(ProcessId(3).predecessor(5), ProcessId(2));
    }

    #[test]
    fn all_processes_is_total_order() {
        let ps: Vec<_> = all_processes(4).collect();
        assert_eq!(
            ps,
            vec![ProcessId(0), ProcessId(1), ProcessId(2), ProcessId(3)]
        );
        let mut sorted = ps.clone();
        sorted.sort();
        assert_eq!(ps, sorted);
    }

    #[test]
    fn display() {
        assert_eq!(ProcessId(7).to_string(), "p7");
    }
}
