//! Deterministic randomness.
//!
//! Every run is driven by a single `u64` seed. Per-process generators and
//! the network generator are derived from it with a SplitMix64 step, so a
//! change to how one process consumes randomness never perturbs another
//! process or the link-delay stream. Identical seeds therefore produce
//! bit-identical traces.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 finalizer — used only to derive independent sub-seeds.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Stream-separation markers for derived seeds.
const NET_STREAM: u64 = 0x6E65_745F_7374_7265; // "net_stre"
const PROC_STREAM: u64 = 0x7072_6F63_5F73_7472; // "proc_str"

/// Derive the RNG used for link-delay sampling.
pub fn derive_network_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(splitmix64(seed ^ NET_STREAM))
}

/// Derive the RNG private to process `pid`.
pub fn derive_process_rng(seed: u64, pid: usize) -> SmallRng {
    SmallRng::seed_from_u64(splitmix64(
        splitmix64(seed ^ PROC_STREAM).wrapping_add(pid as u64),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = derive_network_rng(42);
        let mut b = derive_network_rng(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_processes_get_independent_streams() {
        let mut a = derive_process_rng(42, 0);
        let mut b = derive_process_rng(42, 1);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn network_stream_distinct_from_process_streams() {
        let mut net = derive_network_rng(7);
        let mut p0 = derive_process_rng(7, 0);
        let xs: Vec<u64> = (0..8).map(|_| net.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| p0.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn splitmix_is_a_bijection_probe() {
        // Not a proof, but distinct inputs in a small range must not collide.
        let outs: std::collections::HashSet<u64> = (0..10_000u64).map(splitmix64).collect();
        assert_eq!(outs.len(), 10_000);
    }
}
