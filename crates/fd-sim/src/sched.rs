//! The scheduler seam: explicit choice points over event ordering.
//!
//! The kernel's default schedule is strict `(time, seq)` order — one
//! arbitrary (but canonical, see DESIGN.md §3.1) linearization of each
//! instant's enabled events. Model checking needs the others. This
//! module exposes the nondeterminism as a [`Scheduler`] trait: when a
//! world runs under [`World::run_scheduled_until`], every same-instant
//! batch becomes a sequence of *choice points* where the scheduler picks
//! which enabled event fires next, or forces a message loss. The
//! [`CanonicalScheduler`] always picks the lowest sequence number, which
//! reproduces `run_until_time` byte for byte — the regression anchor
//! that lets `fd-mc` treat the default schedule as branch zero.
//!
//! [`World::run_scheduled_until`]: crate::world::World::run_scheduled_until
//! [`World`]: crate::world::World

use crate::actor::TimerTag;
use crate::metrics::Metrics;
use crate::process::ProcessId;
use crate::time::Time;
use crate::trace::Trace;

/// What one enabled event would do, summarized for a [`Scheduler`].
///
/// Deliberately payload-free: the scheduler sees message kinds and
/// targets (enough for footprint-based partial-order reduction and for
/// witness labels) but cannot touch actor state or message contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnabledKind {
    /// A message delivery.
    Deliver {
        /// Sender.
        from: ProcessId,
        /// Receiver (the event's footprint).
        to: ProcessId,
        /// The message's [`kind`](crate::actor::SimMessage::kind) label.
        msg_kind: &'static str,
    },
    /// A timer firing at `pid` (stale or cancelled timers included —
    /// selecting one is a no-op the kernel filters, exactly as the
    /// canonical loop would).
    Timer {
        /// The timer's owner (the event's footprint).
        pid: ProcessId,
        /// The timer's tag.
        tag: TimerTag,
    },
    /// A scheduled crash of `pid`.
    Crash {
        /// The process that crashes.
        pid: ProcessId,
    },
    /// A scheduled fault-injection intervention.
    Intervention,
}

/// One event the scheduler may fire at the current choice point.
#[derive(Debug, Clone, Copy)]
pub struct EnabledEvent {
    /// The instant (shared by every event of the choice point).
    pub at: Time,
    /// The kernel's tie-breaking sequence number. Canonical order fires
    /// the lowest seq first.
    pub seq: u64,
    /// A content-based digest of the event (time, kind, endpoints,
    /// payload debug form — *not* the seq). Stable across different
    /// interleavings that leave the same event pending, which is what
    /// sleep sets and visited-state comparisons key on.
    pub key: u64,
    /// What the event does.
    pub kind: EnabledKind,
}

impl EnabledEvent {
    /// The single process this event mutates, if any — the footprint
    /// that partial-order reduction uses: two events with disjoint
    /// footprints commute. Crashes and interventions mutate global
    /// state and return `None` (conservatively dependent on everything).
    pub fn target(&self) -> Option<ProcessId> {
        match self.kind {
            EnabledKind::Deliver { to, .. } => Some(to),
            EnabledKind::Timer { pid, .. } => Some(pid),
            EnabledKind::Crash { .. } | EnabledKind::Intervention => None,
        }
    }

    /// Whether this event is a message delivery (the only kind a
    /// [`SchedChoice::Drop`] may select).
    pub fn is_deliver(&self) -> bool {
        matches!(self.kind, EnabledKind::Deliver { .. })
    }
}

/// Everything a [`Scheduler`] sees at one choice point.
#[derive(Debug)]
pub struct ChoicePoint<'a> {
    /// The instant being scheduled.
    pub now: Time,
    /// The enabled events, in canonical `(time, seq)` order — index 0
    /// is what the default schedule would fire.
    pub enabled: &'a [EnabledEvent],
    /// Per-process crash flags (index = pid).
    pub crashed: &'a [bool],
    /// The world's incremental state digest, if state tracking is on
    /// (see `WorldBuilder::track_state`); `None` otherwise. Equal
    /// digests mean equal futures for deterministic actors over
    /// RNG-free links — the visited-set key for exploration pruning.
    pub state_digest: Option<u64>,
}

/// The scheduler's decision at a choice point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedChoice {
    /// Fire `enabled[i]`.
    Event(usize),
    /// Discard `enabled[i]` — which must be a delivery — as a link
    /// loss: the message is dropped with [`DropReason::Link`] exactly
    /// as if the network had eaten it, and the receiver never sees it.
    /// This is how the model checker places adversarial message losses
    /// on otherwise reliable links.
    ///
    /// [`DropReason::Link`]: crate::trace::DropReason::Link
    Drop(usize),
}

/// A pluggable schedule over enabled events.
///
/// The kernel consults the scheduler once per event selection — also
/// when only a single event is enabled, because a `Drop` of it is still
/// a meaningful alternative. Implementations must return an in-range
/// choice; `Drop` must select a delivery.
pub trait Scheduler {
    /// Pick what happens next at `cp`.
    fn choose(&mut self, cp: &ChoicePoint<'_>) -> SchedChoice;
}

/// The identity scheduler: always fire the lowest-seq enabled event.
///
/// A run driven by this scheduler is byte-identical (same trace digest,
/// same metrics) to the same world run through
/// [`run_until_time`](crate::world::World::run_until_time) — asserted
/// by regression tests here and in `fd-mc`.
#[derive(Debug, Default, Clone, Copy)]
pub struct CanonicalScheduler;

impl Scheduler for CanonicalScheduler {
    fn choose(&mut self, _cp: &ChoicePoint<'_>) -> SchedChoice {
        SchedChoice::Event(0)
    }
}

/// Object-safe handle to a schedulable world, erasing the actor type.
///
/// `fd-mc` explores worlds of many different actor types (detector
/// standalones, consensus nodes, replicated logs) through one driver;
/// target adapters box a concrete `World<A>` behind this trait. The
/// surface is the minimum the exploration loop needs: run under a
/// scheduler, inject crash schedules, and collect results.
pub trait SchedWorld {
    /// Number of processes.
    fn n(&self) -> usize;
    /// Current simulated time.
    fn now(&self) -> Time;
    /// Whether `pid` has crashed.
    fn is_crashed(&self, pid: ProcessId) -> bool;
    /// Schedule a crash-stop failure of `pid` at `at`.
    fn schedule_crash(&mut self, pid: ProcessId, at: Time);
    /// Run every event at or before `until` under `sched`, then advance
    /// the clock to `until`.
    fn run_scheduled_until(&mut self, until: Time, sched: &mut dyn Scheduler);
    /// The world's incremental state digest (meaningful only with state
    /// tracking on; see [`ChoicePoint::state_digest`]).
    fn state_digest(&self) -> u64;
    /// Take the run's trace and metrics (the world is then spent —
    /// exploration builds a fresh world per run).
    fn take_results(&mut self) -> (Trace, Metrics);
}

impl<A: crate::actor::Actor> SchedWorld for crate::world::World<A> {
    fn n(&self) -> usize {
        crate::world::World::n(self)
    }
    fn now(&self) -> Time {
        crate::world::World::now(self)
    }
    fn is_crashed(&self, pid: ProcessId) -> bool {
        crate::world::World::is_crashed(self, pid)
    }
    fn schedule_crash(&mut self, pid: ProcessId, at: Time) {
        crate::world::World::schedule_crash(self, pid, at)
    }
    fn run_scheduled_until(&mut self, until: Time, sched: &mut dyn Scheduler) {
        crate::world::World::run_scheduled_until(self, until, sched)
    }
    fn state_digest(&self) -> u64 {
        crate::world::World::state_digest(self)
    }
    fn take_results(&mut self) -> (Trace, Metrics) {
        crate::world::World::take_results(self)
    }
}
