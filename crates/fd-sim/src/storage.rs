//! Deterministic durable-storage model: a simulated disk with explicit
//! fsync and crash-truncation semantics.
//!
//! The paper's system model has no disks — processes fail by crashing
//! and never recover. The warm-restart extension
//! ([`NetChange::Restart`](crate::chaos::NetChange::Restart)) keeps the
//! actor's in-memory state, which models a process *pause*, not a real
//! crash. A replicated service that claims durability needs the
//! stronger story: on a crash, everything volatile is lost and only
//! what was explicitly fsynced survives. [`SimDisk`] provides exactly
//! that boundary, deterministically:
//!
//! * **Appends are volatile until fsync.** [`SimDisk::append`] stages
//!   bytes; [`SimDisk::fsync`] moves them to the durable image. The
//!   *cost* of an fsync is not modeled here — it is simulated time, so
//!   the actor charges it by scheduling its group-commit timer
//!   [`StorageConfig::fsync_interval`]` + `[`StorageConfig::fsync_cost`]
//!   after the first dirty write (see `fd-kv`'s replica).
//! * **Atomic replace.** [`SimDisk::replace`] stages a whole-image
//!   swap (the rename-over trick used for snapshot files); the swap
//!   becomes durable only at the next [`SimDisk::fsync`]. A crash
//!   before that keeps the *old* image intact.
//! * **Crash truncation with torn tails.** [`SimDisk::crash`] discards
//!   any staged replace and keeps only a caller-chosen prefix of the
//!   unsynced appends — modeling the real-world failure mode where a
//!   crash tears the last partially-written record. The caller derives
//!   the prefix length from its process RNG so recovery is a pure
//!   function of the seed.
//!
//! Nothing here reads a clock or an RNG; `SimDisk` is plain state, so
//! it composes with [`World::reset`](crate::World::reset) and
//! byte-identical replay for free.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Timing knobs of the simulated durability layer. The disk itself is
/// untimed; actors apply these when scheduling their commit timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageConfig {
    /// Fixed latency of one fsync (charged once per group commit).
    pub fsync_cost: SimDuration,
    /// Group-commit window: dirty appends are fsynced together at this
    /// cadence rather than one syscall per record.
    pub fsync_interval: SimDuration,
}

impl Default for StorageConfig {
    fn default() -> StorageConfig {
        StorageConfig {
            fsync_cost: SimDuration::from_millis(2),
            fsync_interval: SimDuration::from_millis(5),
        }
    }
}

/// One simulated disk file: a durable byte image plus the volatile
/// write-ahead of bytes appended (or a whole-image replace staged)
/// since the last fsync.
#[derive(Debug, Clone, Default)]
pub struct SimDisk {
    durable: Vec<u8>,
    /// Bytes appended since the last fsync (lost or torn on crash).
    pending: Vec<u8>,
    /// A staged whole-image swap (`None` = none staged).
    staged: Option<Vec<u8>>,
    fsyncs: u64,
    appended: u64,
}

impl SimDisk {
    /// An empty disk.
    pub fn new() -> SimDisk {
        SimDisk::default()
    }

    /// Stage `bytes` at the end of the file. Volatile until
    /// [`fsync`](SimDisk::fsync).
    pub fn append(&mut self, bytes: &[u8]) {
        self.pending.extend_from_slice(bytes);
        self.appended += bytes.len() as u64;
    }

    /// Stage an atomic whole-image replacement (write-temp-then-rename).
    /// Discards any pending appends — they were relative to the old
    /// image. Durable only after the next [`fsync`](SimDisk::fsync); a
    /// crash first keeps the old image.
    pub fn replace(&mut self, image: Vec<u8>) {
        self.pending.clear();
        self.staged = Some(image);
    }

    /// Make everything staged durable: an in-flight replace first, then
    /// the pending appends.
    pub fn fsync(&mut self) {
        if let Some(image) = self.staged.take() {
            self.durable = image;
        }
        self.durable.extend_from_slice(&self.pending);
        self.pending.clear();
        self.fsyncs += 1;
    }

    /// Whether anything is staged but not yet durable.
    pub fn dirty(&self) -> bool {
        !self.pending.is_empty() || self.staged.is_some()
    }

    /// The durable image — all a recovery ever gets to read.
    pub fn durable(&self) -> &[u8] {
        &self.durable
    }

    /// Bytes appended since the last fsync (exposed so a crash can tear
    /// a prefix of exactly this region).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Apply crash-truncation semantics: the staged replace (if any) is
    /// discarded whole — the rename never happened — and only the first
    /// `keep_pending` bytes of the unsynced appends reach the durable
    /// image, modeling a torn final write. `keep_pending` is clamped to
    /// the pending length; the caller typically draws it from its
    /// process RNG so the tear point is seed-deterministic.
    pub fn crash(&mut self, keep_pending: usize) {
        self.staged = None;
        let keep = keep_pending.min(self.pending.len());
        self.durable.extend_from_slice(&self.pending[..keep]);
        self.pending.clear();
    }

    /// Number of fsyncs since creation (reporting only).
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Total bytes ever appended (reporting only).
    pub fn appended_bytes(&self) -> u64 {
        self.appended
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_are_volatile_until_fsync() {
        let mut d = SimDisk::new();
        d.append(b"abc");
        assert!(d.dirty());
        assert_eq!(d.durable(), b"");
        d.fsync();
        assert!(!d.dirty());
        assert_eq!(d.durable(), b"abc");
        assert_eq!(d.fsyncs(), 1);
    }

    #[test]
    fn crash_keeps_only_the_torn_prefix_of_pending_appends() {
        let mut d = SimDisk::new();
        d.append(b"abc");
        d.fsync();
        d.append(b"defgh");
        d.crash(2);
        assert_eq!(d.durable(), b"abcde", "synced prefix + 2 torn bytes");
        assert!(!d.dirty());
        // The clamp: a keep larger than pending is the whole tail.
        let mut d = SimDisk::new();
        d.append(b"xy");
        d.crash(99);
        assert_eq!(d.durable(), b"xy");
    }

    #[test]
    fn replace_is_atomic_across_crashes() {
        let mut d = SimDisk::new();
        d.append(b"old");
        d.fsync();
        d.replace(b"NEWIMAGE".to_vec());
        // Crash before fsync: the old image survives untouched.
        let mut crashed = d.clone();
        crashed.crash(usize::MAX);
        assert_eq!(crashed.durable(), b"old");
        // Fsync commits the swap.
        d.fsync();
        assert_eq!(d.durable(), b"NEWIMAGE");
    }

    #[test]
    fn replace_discards_appends_staged_against_the_old_image() {
        let mut d = SimDisk::new();
        d.append(b"tail");
        d.replace(b"snap".to_vec());
        d.append(b"+rec");
        d.fsync();
        assert_eq!(d.durable(), b"snap+rec");
    }

    #[test]
    fn byte_counters_track_appends() {
        let mut d = SimDisk::new();
        d.append(b"12345");
        d.append(b"678");
        assert_eq!(d.appended_bytes(), 8);
        assert_eq!(d.pending_len(), 8);
    }
}
