//! Simulated time.
//!
//! The simulator uses a discrete logical clock measured in *ticks*. One tick
//! is interpreted as one microsecond throughout the workspace (so
//! [`SimDuration::from_millis`] multiplies by 1000), but nothing in the
//! kernel depends on that interpretation: all scheduling is purely ordinal.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the simulation clock, in ticks since time zero.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(pub u64);

/// A span of simulated time, in ticks.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl Time {
    /// The origin of the simulation clock.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; used as "never".
    pub const MAX: Time = Time(u64::MAX);

    /// Construct an instant `ms` milliseconds after time zero.
    pub const fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000)
    }

    /// Construct an instant `s` seconds after time zero.
    pub const fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000)
    }

    /// Raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// This instant expressed in (whole) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Elapsed span since `earlier`, saturating to zero if `earlier` is later.
    pub fn since(self, earlier: Time) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a span.
    pub fn saturating_add(self, d: SimDuration) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// A span of `s` seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// A span of `us` ticks (microseconds under the default interpretation).
    pub const fn from_ticks(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// This span expressed in (whole) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Multiply the span by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Halve the span (rounding down).
    pub fn halved(self) -> SimDuration {
        SimDuration(self.0 / 2)
    }
}

impl Add<SimDuration> for Time {
    type Output = Time;
    fn add(self, rhs: SimDuration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for Time {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = SimDuration;
    fn sub(self, rhs: Time) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}us", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(Time::from_millis(3).ticks(), 3_000);
        assert_eq!(Time::from_secs(2), Time::from_millis(2_000));
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, Time::from_millis(15));
        assert_eq!(t - Time::from_millis(10), SimDuration::from_millis(5));
        assert_eq!(t.since(Time::from_millis(20)), SimDuration::ZERO);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Time::MAX.saturating_add(SimDuration(1)), Time::MAX);
        assert_eq!(
            SimDuration(u64::MAX).saturating_mul(2),
            SimDuration(u64::MAX)
        );
    }

    #[test]
    fn ordering_is_by_tick() {
        assert!(Time(1) < Time(2));
        assert!(SimDuration(5) > SimDuration(4));
    }
}
