//! Human-readable trace rendering.
//!
//! Debugging a distributed protocol means reading event orderings. The
//! [`Timeline`] builder turns a recorded [`Trace`] into an annotated,
//! filterable, chronological listing:
//!
//! ```text
//! [   25.000ms] ✖ p3 crashed
//! [   43.120ms] p0  fd.suspects → {p3}
//! [   51.007ms] p0 → p4  ec.proposition (round 1)
//! ```

use crate::process::ProcessId;
use crate::time::Time;
use crate::trace::{Payload, Trace, TraceKind};
use std::fmt::Write as _;

/// A configurable renderer over a [`Trace`].
///
/// ```
/// use fd_sim::{Payload, ProcessId, Time, Timeline, Trace, TraceEvent, TraceKind};
///
/// let trace = Trace::from_events(vec![TraceEvent {
///     at: Time::from_millis(9),
///     kind: TraceKind::Observation {
///         pid: ProcessId(0),
///         tag: "fd.trusted",
///         payload: Payload::Pid(ProcessId(1)),
///     },
/// }]);
/// let listing = Timeline::new(&trace).render();
/// assert!(listing.contains("p0  fd.trusted → p1"));
/// ```
pub struct Timeline<'a> {
    trace: &'a Trace,
    from: Time,
    until: Time,
    include_messages: bool,
    include_drops: bool,
    tags: Option<Vec<&'a str>>,
    processes: Option<Vec<ProcessId>>,
    max_processes: Option<usize>,
}

impl<'a> Timeline<'a> {
    /// Render everything by default: observations and crashes, but not
    /// the (usually overwhelming) per-message events.
    pub fn new(trace: &'a Trace) -> Timeline<'a> {
        Timeline {
            trace,
            from: Time::ZERO,
            until: Time::MAX,
            include_messages: false,
            include_drops: false,
            tags: None,
            processes: None,
            max_processes: None,
        }
    }

    /// Restrict to events in `[from, until]`.
    pub fn between(mut self, from: Time, until: Time) -> Self {
        self.from = from;
        self.until = until;
        self
    }

    /// Include message send/delivery events.
    pub fn with_messages(mut self) -> Self {
        self.include_messages = true;
        self
    }

    /// Include message drops.
    pub fn with_drops(mut self) -> Self {
        self.include_drops = true;
        self
    }

    /// Only show observations with these tags.
    pub fn only_tags(mut self, tags: &[&'a str]) -> Self {
        self.tags = Some(tags.to_vec());
        self
    }

    /// Only show events involving these processes.
    pub fn only_processes(mut self, ps: &[ProcessId]) -> Self {
        self.processes = Some(ps.to_vec());
        self
    }

    /// Degrade to the one-line [`summary`] when the (post-filter) trace
    /// involves more than `max` distinct processes. A per-process
    /// listing of an n = 4096 world is unreadable and can run to
    /// hundreds of megabytes; above the threshold a summary is the
    /// honest rendering. An explicit `only_processes` filter counts
    /// only the selected processes, so zooming into a few processes of
    /// a huge world still renders fully.
    pub fn max_processes(mut self, max: usize) -> Self {
        self.max_processes = Some(max);
        self
    }

    /// Distinct processes the (filtered) rendering would touch.
    fn distinct_processes(&self) -> usize {
        let mut seen = std::collections::BTreeSet::new();
        for ev in self.trace.events() {
            if ev.at < self.from || ev.at > self.until {
                continue;
            }
            match &ev.kind {
                TraceKind::Observation { pid, tag, .. } => {
                    if !tag.starts_with("chaos.") && self.wants_process(*pid) {
                        seen.insert(*pid);
                    }
                }
                TraceKind::Crashed { pid } => {
                    if self.wants_process(*pid) {
                        seen.insert(*pid);
                    }
                }
                TraceKind::Sent { from, to, .. } | TraceKind::Delivered { from, to, .. } => {
                    if self.include_messages {
                        for p in [*from, *to] {
                            if self.wants_process(p) {
                                seen.insert(p);
                            }
                        }
                    }
                }
                TraceKind::Dropped { from, to, .. } => {
                    if self.include_drops {
                        for p in [*from, *to] {
                            if self.wants_process(p) {
                                seen.insert(p);
                            }
                        }
                    }
                }
            }
        }
        seen.len()
    }

    fn wants_process(&self, p: ProcessId) -> bool {
        self.processes.as_ref().is_none_or(|ps| ps.contains(&p))
    }

    fn fmt_payload(p: &Payload) -> String {
        match p {
            Payload::None => String::new(),
            Payload::U64(x) => x.to_string(),
            Payload::Pid(p) => p.to_string(),
            Payload::Pids(v) => {
                let inner: Vec<String> = v.iter().map(|p| p.to_string()).collect();
                format!("{{{}}}", inner.join(","))
            }
            Payload::PidU64(p, x) => format!("({p}, {x})"),
            Payload::U64Pair(a, b) => format!("({a}, {b})"),
            Payload::Text(s) => s.clone(),
        }
    }

    /// Produce the listing (or, above the
    /// [`max_processes`](Timeline::max_processes) threshold, the
    /// one-line summary).
    pub fn render(&self) -> String {
        if let Some(max) = self.max_processes {
            let distinct = self.distinct_processes();
            if distinct > max {
                return format!(
                    "{} distinct processes exceed the {} per-process listing \
                     limit; showing the summary instead (narrow with a \
                     process filter for a full listing)\n{}\n",
                    distinct,
                    max,
                    summary(self.trace)
                );
            }
        }
        let mut out = String::new();
        for ev in self.trace.events() {
            if ev.at < self.from || ev.at > self.until {
                continue;
            }
            // Formatted lazily: most events are filtered out below, and
            // formatting the stamp for them is wasted work.
            let stamp = || format!("[{:>10.3}ms]", ev.at.ticks() as f64 / 1000.0);
            match &ev.kind {
                TraceKind::Observation { pid, tag, payload } => {
                    if let Some(tags) = &self.tags {
                        if !tags.contains(tag) {
                            continue;
                        }
                    }
                    // Chaos interventions (partition cuts, heals, GST
                    // markers, …) are environment-wide bands, not
                    // per-process output: they render as full-width
                    // annotations and ignore the process filter (the
                    // `p0` attribution is a harness artifact).
                    if tag.starts_with("chaos.") {
                        let p = Self::fmt_payload(payload);
                        let body = if p.is_empty() {
                            (*tag).to_string()
                        } else {
                            format!("{tag} {p}")
                        };
                        let _ = writeln!(out, "{} ══ {body} ══", stamp());
                        continue;
                    }
                    if !self.wants_process(*pid) {
                        continue;
                    }
                    let _ = writeln!(
                        out,
                        "{} {pid}  {tag} → {}",
                        stamp(),
                        Self::fmt_payload(payload)
                    );
                }
                TraceKind::Crashed { pid } => {
                    if !self.wants_process(*pid) {
                        continue;
                    }
                    let _ = writeln!(out, "{} ✖ {pid} crashed", stamp());
                }
                TraceKind::Sent {
                    from,
                    to,
                    kind,
                    round,
                } => {
                    if !self.include_messages
                        || !(self.wants_process(*from) || self.wants_process(*to))
                    {
                        continue;
                    }
                    let r = round.map(|r| format!(" (round {r})")).unwrap_or_default();
                    let _ = writeln!(out, "{} {from} → {to}  {kind}{r}", stamp());
                }
                TraceKind::Delivered {
                    from,
                    to,
                    kind,
                    round,
                } => {
                    if !self.include_messages
                        || !(self.wants_process(*from) || self.wants_process(*to))
                    {
                        continue;
                    }
                    let r = round.map(|r| format!(" (round {r})")).unwrap_or_default();
                    let _ = writeln!(out, "{} {from} ⇒ {to}  {kind}{r} delivered", stamp());
                }
                TraceKind::Dropped {
                    from,
                    to,
                    kind,
                    reason,
                } => {
                    if !self.include_drops
                        || !(self.wants_process(*from) || self.wants_process(*to))
                    {
                        continue;
                    }
                    let _ = writeln!(
                        out,
                        "{} {from} ⊘ {to}  {kind} dropped ({reason:?})",
                        stamp()
                    );
                }
            }
        }
        out
    }
}

/// A one-line statistical summary of a trace.
pub fn summary(trace: &Trace) -> String {
    let mut sent = 0usize;
    let mut delivered = 0usize;
    let mut dropped = 0usize;
    let mut crashes = 0usize;
    let mut observations = 0usize;
    for ev in trace.events() {
        match ev.kind {
            TraceKind::Sent { .. } => sent += 1,
            TraceKind::Delivered { .. } => delivered += 1,
            TraceKind::Dropped { .. } => dropped += 1,
            TraceKind::Crashed { .. } => crashes += 1,
            TraceKind::Observation { .. } => observations += 1,
        }
    }
    format!(
        "{} events: {sent} sent, {delivered} delivered, {dropped} dropped, {crashes} crashed, {observations} observations",
        trace.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{DropReason, TraceEvent};

    fn sample() -> Trace {
        Trace::from_events(vec![
            TraceEvent {
                at: Time::from_millis(1),
                kind: TraceKind::Sent {
                    from: ProcessId(0),
                    to: ProcessId(1),
                    kind: "hb",
                    round: None,
                },
            },
            TraceEvent {
                at: Time::from_millis(2),
                kind: TraceKind::Delivered {
                    from: ProcessId(0),
                    to: ProcessId(1),
                    kind: "hb",
                    round: Some(3),
                },
            },
            TraceEvent {
                at: Time::from_millis(5),
                kind: TraceKind::Crashed { pid: ProcessId(2) },
            },
            TraceEvent {
                at: Time::from_millis(9),
                kind: TraceKind::Observation {
                    pid: ProcessId(0),
                    tag: "fd.trusted",
                    payload: Payload::Pid(ProcessId(1)),
                },
            },
            TraceEvent {
                at: Time::from_millis(12),
                kind: TraceKind::Dropped {
                    from: ProcessId(1),
                    to: ProcessId(2),
                    kind: "hb",
                    reason: DropReason::ReceiverCrashed,
                },
            },
        ])
    }

    /// A filter combination that rejects every event must render *no*
    /// output at all — zero lines, empty string. (Regression: the stamp
    /// used to be formatted before the filters ran; laziness is only
    /// safe because nothing of the stamp can leak for filtered events.)
    #[test]
    fn fully_filtered_trace_renders_zero_lines() {
        let tr = sample();
        // p9 appears nowhere in the sample trace.
        let out = Timeline::new(&tr)
            .with_messages()
            .with_drops()
            .only_processes(&[ProcessId(9)])
            .render();
        assert_eq!(out.lines().count(), 0);
        assert_eq!(out, "");
    }

    #[test]
    fn default_shows_observations_and_crashes_only() {
        let tr = sample();
        let out = Timeline::new(&tr).render();
        assert!(out.contains("p2 crashed"));
        assert!(out.contains("fd.trusted → p1"));
        assert!(!out.contains("hb"), "messages hidden by default:\n{out}");
        assert_eq!(out.lines().count(), 2);
    }

    #[test]
    fn messages_and_drops_opt_in() {
        let tr = sample();
        let out = Timeline::new(&tr).with_messages().with_drops().render();
        assert!(out.contains("p0 → p1  hb"));
        assert!(out.contains("(round 3) delivered"));
        assert!(out.contains("dropped (ReceiverCrashed)"));
        assert_eq!(out.lines().count(), 5);
    }

    #[test]
    fn filters_compose() {
        let tr = sample();
        let out = Timeline::new(&tr)
            .with_messages()
            .only_processes(&[ProcessId(2)])
            .between(Time::from_millis(4), Time::from_millis(10))
            .render();
        assert!(out.contains("p2 crashed"));
        assert!(
            !out.contains("fd.trusted"),
            "p0's observation filtered out:\n{out}"
        );
    }

    #[test]
    fn tag_filter() {
        let tr = sample();
        let out = Timeline::new(&tr).only_tags(&["nope"]).render();
        assert!(!out.contains("fd.trusted"));
        assert!(out.contains("crashed"), "crashes are not tag-filtered");
    }

    /// A two-cut chaos plan renders partition and heal bands in order,
    /// and the bands survive a process filter that would hide ordinary
    /// `p0` observations (the attribution pid is a harness artifact).
    #[test]
    fn chaos_bands_render_for_a_two_cut_plan() {
        let tr = Trace::from_events(vec![
            TraceEvent {
                at: Time::from_millis(10),
                kind: TraceKind::Observation {
                    pid: ProcessId(0),
                    tag: "chaos.partition",
                    payload: Payload::pids([ProcessId(0), ProcessId(1)]),
                },
            },
            TraceEvent {
                at: Time::from_millis(20),
                kind: TraceKind::Observation {
                    pid: ProcessId(0),
                    tag: "chaos.heal",
                    payload: Payload::pids([ProcessId(0), ProcessId(1)]),
                },
            },
            TraceEvent {
                at: Time::from_millis(30),
                kind: TraceKind::Observation {
                    pid: ProcessId(0),
                    tag: "chaos.partition",
                    payload: Payload::pids([ProcessId(2), ProcessId(3)]),
                },
            },
            TraceEvent {
                at: Time::from_millis(40),
                kind: TraceKind::Observation {
                    pid: ProcessId(0),
                    tag: "chaos.heal",
                    payload: Payload::pids([ProcessId(2), ProcessId(3)]),
                },
            },
            TraceEvent {
                at: Time::from_millis(45),
                kind: TraceKind::Observation {
                    pid: ProcessId(0),
                    tag: "chaos.gst",
                    payload: Payload::None,
                },
            },
        ]);
        let out = Timeline::new(&tr).render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5, "{out}");
        assert!(lines[0].contains("══ chaos.partition {p0,p1} ══"), "{out}");
        assert!(lines[1].contains("══ chaos.heal {p0,p1} ══"), "{out}");
        assert!(lines[2].contains("══ chaos.partition {p2,p3} ══"), "{out}");
        assert!(lines[3].contains("══ chaos.heal {p2,p3} ══"), "{out}");
        assert!(
            lines[4].contains("══ chaos.gst ══"),
            "empty payload renders without a gap: {out}"
        );
        // Bands are environment-wide: a filter to p9 keeps them.
        let filtered = Timeline::new(&tr).only_processes(&[ProcessId(9)]).render();
        assert_eq!(filtered.lines().count(), 5, "{filtered}");
        // But an explicit tag filter still applies.
        let tagged = Timeline::new(&tr).only_tags(&["chaos.gst"]).render();
        assert_eq!(tagged.lines().count(), 1, "{tagged}");
    }

    /// Above the `max_processes` threshold the renderer degrades to the
    /// one-line summary; an explicit process filter re-enables the full
    /// listing (zooming in is exactly what the filter is for).
    #[test]
    fn max_processes_degrades_to_summary() {
        let tr = Trace::from_events(
            (0..100)
                .map(|i| TraceEvent {
                    at: Time::from_millis(i as u64),
                    kind: TraceKind::Observation {
                        pid: ProcessId(i),
                        tag: "fd.suspects",
                        payload: Payload::None,
                    },
                })
                .collect(),
        );
        // 100 distinct processes > 10: summary.
        let out = Timeline::new(&tr).max_processes(10).render();
        assert!(out.contains("100 distinct processes"), "{out}");
        assert!(out.contains("100 events"), "{out}");
        assert!(!out.contains("fd.suspects →"), "{out}");
        // Under the limit: full listing.
        let full = Timeline::new(&tr).max_processes(100).render();
        assert_eq!(full.lines().count(), 100);
        // A process filter narrows the distinct count below the limit.
        let zoomed = Timeline::new(&tr)
            .max_processes(10)
            .only_processes(&[ProcessId(3), ProcessId(7)])
            .render();
        assert_eq!(zoomed.lines().count(), 2, "{zoomed}");
        assert!(zoomed.contains("p3"), "{zoomed}");
    }

    #[test]
    fn summary_counts() {
        let s = summary(&sample());
        assert_eq!(
            s,
            "5 events: 1 sent, 1 delivered, 1 dropped, 1 crashed, 1 observations"
        );
    }
}
