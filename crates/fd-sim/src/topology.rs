//! Network topology: the per-directed-link configuration of a run.
//!
//! Every ordered pair of distinct processes is connected by a directed link
//! (the paper assumes two opposite reliable links per pair; other models
//! are opt-in per experiment). Self-links exist for uniformity — a process
//! "sending to itself" is delivered after a constant one-tick delay.

use crate::link::LinkModel;
use crate::process::ProcessId;
use crate::time::{SimDuration, Time};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The link configuration of an `n`-process system.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    n: usize,
    default: LinkModel,
    loopback: LinkModel,
    overrides: BTreeMap<(ProcessId, ProcessId), LinkModel>,
}

impl NetworkConfig {
    /// A fully connected network of `n` processes with the default
    /// (reliable, jittery) link model everywhere.
    pub fn new(n: usize) -> NetworkConfig {
        NetworkConfig {
            n,
            default: LinkModel::default(),
            loopback: LinkModel::reliable_const(SimDuration(1)),
            overrides: BTreeMap::new(),
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Set the model used by every link without an explicit override.
    pub fn with_default(mut self, model: LinkModel) -> Self {
        self.default = model;
        self
    }

    /// Override one directed link.
    pub fn with_link(mut self, from: ProcessId, to: ProcessId, model: LinkModel) -> Self {
        assert!(
            from.index() < self.n && to.index() < self.n,
            "link endpoints out of range"
        );
        self.overrides.insert((from, to), model);
        self
    }

    /// Override every link *into* `to` (the "input links of the leader"
    /// requirement of the Fig. 2 transformation).
    pub fn with_links_into(mut self, to: ProcessId, model: LinkModel) -> Self {
        for i in 0..self.n {
            let from = ProcessId(i);
            if from != to {
                self.overrides.insert((from, to), model.clone());
            }
        }
        self
    }

    /// Override every link *out of* `from` (the "output links of the
    /// leader" requirement of the Fig. 2 transformation).
    pub fn with_links_out_of(mut self, from: ProcessId, model: LinkModel) -> Self {
        for i in 0..self.n {
            let to = ProcessId(i);
            if from != to {
                self.overrides.insert((from, to), model.clone());
            }
        }
        self
    }

    /// Make every link eventually timely with a shared GST and bound — the
    /// global partial-synchrony model of \[6,8\].
    pub fn partially_synchronous(
        n: usize,
        gst: Time,
        bound: SimDuration,
        pre_max: SimDuration,
        pre_drop: f64,
    ) -> NetworkConfig {
        NetworkConfig::new(n)
            .with_default(LinkModel::eventually_timely(gst, bound, pre_max, pre_drop))
    }

    /// Replace the default link model in place — the mutating twin of
    /// [`NetworkConfig::with_default`], used by scheduled interventions
    /// (see [`crate::chaos`]) that change the whole network's regime
    /// mid-run (e.g. a movable GST sweep). Existing per-link overrides
    /// are untouched.
    pub fn set_default(&mut self, model: LinkModel) {
        self.default = model;
    }

    /// Override one directed link in place — the mutating twin of
    /// [`NetworkConfig::with_link`], used by scheduled interventions to
    /// cut (`LinkModel::Dead`) or heal (restore the original model) a
    /// link while a run is executing. Panics if either endpoint is out
    /// of range.
    pub fn set_link(&mut self, from: ProcessId, to: ProcessId, model: LinkModel) {
        // fd-lint: allow(HP001, reason = "documented panic on out-of-range endpoints; interventions are rare control-plane events, not per-message work")
        assert!(
            from.index() < self.n && to.index() < self.n,
            "link endpoints out of range"
        );
        self.overrides.insert((from, to), model);
    }

    /// Remove the override on one directed link, restoring it to the
    /// default model. A no-op if the link has no override. Used by heal
    /// interventions when the original configuration had no per-link
    /// override to restore.
    pub fn clear_link(&mut self, from: ProcessId, to: ProcessId) {
        self.overrides.remove(&(from, to));
    }

    /// The model governing the directed link `from → to`.
    #[inline]
    pub fn link(&self, from: ProcessId, to: ProcessId) -> &LinkModel {
        if from == to {
            return &self.loopback;
        }
        // Most runs configure no per-link overrides; skip the map probe
        // entirely on that (per-send hot) path.
        if self.overrides.is_empty() {
            return &self.default;
        }
        self.overrides.get(&(from, to)).unwrap_or(&self.default)
    }

    /// Whether every link in the network (default, loopback, and all
    /// overrides) is RNG-free — see [`LinkModel::is_rng_free`]. Model
    /// checking requires this: state hashes assume the network RNG
    /// stream is never consumed, so delivery reordering cannot shift
    /// later draws.
    pub fn is_rng_free(&self) -> bool {
        self.default.is_rng_free()
            && self.loopback.is_rng_free()
            && self.overrides.values().all(LinkModel::is_rng_free)
    }

    /// A copy of this configuration restricted to the first `new_n`
    /// processes: link overrides touching removed processes are dropped.
    /// Used by the campaign shrinker to try smaller systems.
    pub fn shrunk_to(&self, new_n: usize) -> NetworkConfig {
        assert!(
            0 < new_n && new_n <= self.n,
            "shrunk_to wants 0 < new_n <= n"
        );
        NetworkConfig {
            n: new_n,
            default: self.default.clone(),
            loopback: self.loopback.clone(),
            overrides: self
                .overrides
                .iter()
                .filter(|((from, to), _)| from.index() < new_n && to.index() < new_n)
                .map(|(k, m)| (*k, m.clone()))
                .collect(),
        }
    }

    /// Apply a transformation to every link model in the configuration
    /// (default, loopback, and each override). Used by the campaign
    /// shrinker to, e.g., reduce loss probabilities while a failure
    /// persists.
    pub fn map_links(&self, mut f: impl FnMut(&LinkModel) -> LinkModel) -> NetworkConfig {
        NetworkConfig {
            n: self.n,
            default: f(&self.default),
            loopback: f(&self.loopback),
            overrides: self.overrides.iter().map(|(k, m)| (*k, f(m))).collect(),
        }
    }

    /// Whether every link (default, loopback, and overrides) satisfies
    /// the §4 fairness condition — see [`LinkModel::is_fair`].
    ///
    /// Liveness properties (completeness, Ω agreement, consensus
    /// termination) are only guaranteed by the paper's algorithms when
    /// the links they depend on are fair; scenarios that deliberately
    /// include permanently dead links should expect those checks to
    /// fail. This is the whole-network audit entry point: it
    /// distinguishes "every link is fair" from the weaker "no link is
    /// lossy", which a dead link also fails but for a different reason.
    pub fn all_links_fair(&self) -> bool {
        self.default.is_fair()
            && self.loopback.is_fair()
            && self.overrides.values().all(|m| m.is_fair())
    }

    /// An upper bound on post-stabilization delay across all links, if one
    /// exists (used by tests to size "run long enough" margins).
    pub fn max_delay_bound(&self) -> Option<SimDuration> {
        fn bound_of(m: &LinkModel) -> Option<SimDuration> {
            match m {
                LinkModel::Reliable { delay } => Some(delay.upper_bound()),
                LinkModel::EventuallyTimely { bound, .. } => Some(*bound),
                LinkModel::FairLossy { .. } | LinkModel::Dead => None,
                // A phased link is bounded iff its *final* phase is (the
                // earlier phases end; "post-stabilization" is the last one).
                LinkModel::Phased(sched) => {
                    bound_of(&sched.phases().last().expect("schedules are non-empty").1)
                }
            }
        }
        let mut max = bound_of(&self.default)?;
        for m in self.overrides.values() {
            match bound_of(m) {
                Some(b) => max = max.max(b),
                None => return None,
            }
        }
        Some(max)
    }
}

// Hand-written serde impls: the override map is keyed by a tuple, which
// JSON objects cannot express, so it serializes as an array of
// `[from, to, model]` triples sorted by key (deterministic output — the
// campaign engine hashes artifacts).
impl Serialize for NetworkConfig {
    fn to_value(&self) -> serde::Value {
        let mut links: Vec<(&(ProcessId, ProcessId), &LinkModel)> = self.overrides.iter().collect();
        links.sort_by_key(|(k, _)| **k);
        let triples = links
            .into_iter()
            .map(|((from, to), model)| {
                serde::Value::Arr(vec![from.to_value(), to.to_value(), model.to_value()])
            })
            .collect();
        serde::Value::Obj(vec![
            ("n".to_string(), self.n.to_value()),
            ("default".to_string(), self.default.to_value()),
            ("loopback".to_string(), self.loopback.to_value()),
            ("overrides".to_string(), serde::Value::Arr(triples)),
        ])
    }
}

impl Deserialize for NetworkConfig {
    fn from_value(v: &serde::Value) -> Result<NetworkConfig, serde::Error> {
        let n = usize::from_value(v.field("n"))?;
        if n == 0 {
            return Err(serde::Error::msg("NetworkConfig: n must be positive"));
        }
        let triples = <Vec<(ProcessId, ProcessId, LinkModel)>>::from_value(v.field("overrides"))?;
        let mut overrides = BTreeMap::new();
        for (from, to, model) in triples {
            if from.index() >= n || to.index() >= n {
                return Err(serde::Error::msg(format!(
                    "NetworkConfig: override {from}->{to} out of range for n={n}"
                )));
            }
            overrides.insert((from, to), model);
        }
        Ok(NetworkConfig {
            n,
            default: LinkModel::from_value(v.field("default"))?,
            loopback: LinkModel::from_value(v.field("loopback"))?,
            overrides,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_applies_everywhere() {
        let cfg = NetworkConfig::new(3).with_default(LinkModel::reliable_const(SimDuration(7)));
        assert_eq!(
            *cfg.link(ProcessId(0), ProcessId(2)),
            LinkModel::reliable_const(SimDuration(7))
        );
    }

    #[test]
    fn override_beats_default() {
        let cfg = NetworkConfig::new(3).with_link(ProcessId(0), ProcessId(1), LinkModel::Dead);
        assert_eq!(*cfg.link(ProcessId(0), ProcessId(1)), LinkModel::Dead);
        assert_eq!(*cfg.link(ProcessId(1), ProcessId(0)), LinkModel::default());
    }

    #[test]
    fn loopback_is_fast_and_reliable() {
        let cfg = NetworkConfig::new(2).with_default(LinkModel::Dead);
        assert_eq!(
            *cfg.link(ProcessId(0), ProcessId(0)),
            LinkModel::reliable_const(SimDuration(1))
        );
    }

    #[test]
    fn into_and_out_of_cover_all_peers() {
        let n = 4;
        let leader = ProcessId(2);
        let cfg = NetworkConfig::new(n)
            .with_links_into(leader, LinkModel::reliable_const(SimDuration(3)))
            .with_links_out_of(
                leader,
                LinkModel::fair_lossy(SimDuration(1), SimDuration(2), 0.5),
            );
        for i in 0..n {
            let p = ProcessId(i);
            if p != leader {
                assert_eq!(
                    *cfg.link(p, leader),
                    LinkModel::reliable_const(SimDuration(3))
                );
                assert!(matches!(cfg.link(leader, p), LinkModel::FairLossy { .. }));
            }
        }
        // Unrelated links keep the default.
        assert_eq!(*cfg.link(ProcessId(0), ProcessId(1)), LinkModel::default());
    }

    #[test]
    fn max_delay_bound_none_with_lossy_links() {
        let cfg = NetworkConfig::new(2).with_default(LinkModel::fair_lossy(
            SimDuration(1),
            SimDuration(2),
            0.1,
        ));
        assert_eq!(cfg.max_delay_bound(), None);
        let cfg = NetworkConfig::new(2).with_default(LinkModel::reliable_const(SimDuration(9)));
        assert_eq!(cfg.max_delay_bound(), Some(SimDuration(9)));
    }

    #[test]
    fn all_links_fair_rejects_any_dead_link() {
        let cfg = NetworkConfig::new(3);
        assert!(cfg.all_links_fair(), "default network is fair everywhere");
        let cfg = NetworkConfig::new(3).with_default(LinkModel::fair_lossy(
            SimDuration(1),
            SimDuration(2),
            0.9,
        ));
        assert!(cfg.all_links_fair(), "heavy loss is still fair");
        // A single dead override breaks whole-network fairness even
        // though every link individually passes `is_lossy`-style checks.
        let cfg = cfg.with_link(ProcessId(0), ProcessId(1), LinkModel::Dead);
        assert!(!cfg.all_links_fair());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_link_panics() {
        let _ = NetworkConfig::new(2).with_link(ProcessId(0), ProcessId(5), LinkModel::Dead);
    }

    #[test]
    fn serde_round_trip_preserves_every_link() {
        let cfg = NetworkConfig::new(4)
            .with_default(LinkModel::fair_lossy(SimDuration(1), SimDuration(9), 0.25))
            .with_link(ProcessId(2), ProcessId(0), LinkModel::Dead)
            .with_links_into(
                ProcessId(3),
                LinkModel::eventually_timely(
                    Time::from_millis(40),
                    SimDuration(5),
                    SimDuration(100),
                    0.5,
                ),
            );
        let json = serde_json::to_string(&cfg).unwrap();
        let back: NetworkConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n(), cfg.n());
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(
                    cfg.link(ProcessId(i), ProcessId(j)),
                    back.link(ProcessId(i), ProcessId(j)),
                    "link {i}->{j} must survive the round trip"
                );
            }
        }
        // Deterministic bytes: override order must not depend on hash state.
        assert_eq!(json, serde_json::to_string(&back).unwrap());
    }

    #[test]
    fn shrunk_to_drops_out_of_range_overrides() {
        let cfg = NetworkConfig::new(5)
            .with_link(ProcessId(0), ProcessId(1), LinkModel::Dead)
            .with_link(ProcessId(4), ProcessId(0), LinkModel::Dead);
        let small = cfg.shrunk_to(3);
        assert_eq!(small.n(), 3);
        assert_eq!(*small.link(ProcessId(0), ProcessId(1)), LinkModel::Dead);
        // The override that referenced p4 is gone; p2->p0 is the default.
        assert_eq!(
            *small.link(ProcessId(2), ProcessId(0)),
            LinkModel::default()
        );
    }

    #[test]
    fn map_links_rewrites_all_positions() {
        let cfg = NetworkConfig::new(3)
            .with_default(LinkModel::fair_lossy(SimDuration(1), SimDuration(2), 0.8))
            .with_link(ProcessId(0), ProcessId(1), LinkModel::Dead);
        let healed = cfg.map_links(|m| match m {
            LinkModel::FairLossy { delay, .. } => LinkModel::Reliable { delay: *delay },
            other => other.clone(),
        });
        assert!(matches!(
            healed.link(ProcessId(1), ProcessId(0)),
            LinkModel::Reliable { .. }
        ));
        assert_eq!(*healed.link(ProcessId(0), ProcessId(1)), LinkModel::Dead);
    }
}
