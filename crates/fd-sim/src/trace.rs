//! Run traces.
//!
//! The kernel can record every message event, crash, and protocol
//! *observation* into a [`Trace`]. Observations are emitted by protocol
//! components via [`Context::observe`](crate::actor::Context::observe) —
//! e.g. a failure detector records each change of its suspected set, a
//! consensus component records its decision — and are what the property
//! checkers in `fd-core` consume to verify the paper's completeness,
//! accuracy, leadership, and consensus properties on concrete runs.

use crate::process::ProcessId;
use crate::time::Time;
use serde::{Deserialize, Serialize};

/// Structured payload of an observation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Payload {
    /// No payload.
    None,
    /// A scalar.
    U64(u64),
    /// A process (e.g. the currently trusted leader).
    Pid(ProcessId),
    /// A set of processes (e.g. the currently suspected set), sorted.
    Pids(Vec<ProcessId>),
    /// A process plus a scalar (e.g. coordinator + round).
    PidU64(ProcessId, u64),
    /// Two scalars (e.g. decided value + deciding round).
    U64Pair(u64, u64),
    /// Free text, for debugging only.
    Text(String),
}

impl Payload {
    /// Build a sorted `Pids` payload from any iterator of processes.
    pub fn pids(iter: impl IntoIterator<Item = ProcessId>) -> Payload {
        let mut v: Vec<ProcessId> = iter.into_iter().collect();
        v.sort_unstable();
        Payload::Pids(v)
    }

    /// The `Pid` payload, if this is one.
    pub fn as_pid(&self) -> Option<ProcessId> {
        match self {
            Payload::Pid(p) => Some(*p),
            _ => None,
        }
    }

    /// The `Pids` payload, if this is one.
    pub fn as_pids(&self) -> Option<&[ProcessId]> {
        match self {
            Payload::Pids(v) => Some(v),
            _ => None,
        }
    }

    /// The `U64` payload, if this is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Payload::U64(x) => Some(*x),
            _ => None,
        }
    }

    /// The `U64Pair` payload, if this is one.
    pub fn as_u64_pair(&self) -> Option<(u64, u64)> {
        match self {
            Payload::U64Pair(a, b) => Some((*a, *b)),
            _ => None,
        }
    }
}

/// Why a message did not reach its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum DropReason {
    /// The link model dropped it (loss, pre-GST chaos, dead link).
    Link,
    /// The destination had crashed by delivery time.
    ReceiverCrashed,
    /// An installed [`LinkMangler`](crate::link::LinkMangler) dropped it
    /// on top of the base link model's verdict.
    Mangled,
}

/// One event in a run trace.
///
/// Message kinds are `&'static str` labels, so traces serialize to JSON
/// (for offline analysis) but do not round-trip back; the checkers all
/// work on the in-memory form.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum TraceKind {
    /// A message left `from` towards `to`.
    Sent {
        /// Sender.
        from: ProcessId,
        /// Destination.
        to: ProcessId,
        /// Message kind label.
        kind: &'static str,
        /// Protocol round tag, if any.
        round: Option<u64>,
    },
    /// A message was delivered and processed at `to`.
    Delivered {
        /// Sender.
        from: ProcessId,
        /// Destination.
        to: ProcessId,
        /// Message kind label.
        kind: &'static str,
        /// Protocol round tag, if any.
        round: Option<u64>,
    },
    /// A message was lost.
    Dropped {
        /// Sender.
        from: ProcessId,
        /// Destination.
        to: ProcessId,
        /// Message kind label.
        kind: &'static str,
        /// Why it was lost.
        reason: DropReason,
    },
    /// `pid` crashed (crash-stop; permanent).
    Crashed {
        /// The crashed process.
        pid: ProcessId,
    },
    /// A protocol observation emitted by `pid`.
    Observation {
        /// The observing process.
        pid: ProcessId,
        /// Observation tag (see `fd-core`'s `obs` module).
        tag: &'static str,
        /// Structured payload.
        payload: Payload,
    },
}

/// A timestamped trace event.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceEvent {
    /// When the event occurred.
    pub at: Time,
    /// What happened.
    pub kind: TraceKind,
}

/// The recorded history of one run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// All events in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub(crate) fn push(&mut self, at: Time, kind: TraceKind) {
        self.events.push(TraceEvent { at, kind });
    }

    /// Clear the trace and pre-size its arena for roughly `hint` events,
    /// so a reused world records a whole run into one up-front
    /// allocation instead of a growth chain.
    pub(crate) fn reset_with_capacity(&mut self, hint: usize) {
        self.events.clear();
        if self.events.capacity() < hint {
            self.events.reserve(hint - self.events.len());
        }
    }

    /// Build a trace from pre-recorded events (used by tests and by tools
    /// that synthesize adversarial histories). Events must be supplied in
    /// the order they occurred.
    pub fn from_events(events: Vec<TraceEvent>) -> Trace {
        Trace { events }
    }

    /// The crash time of each process that crashed, in event order.
    pub fn crashes(&self) -> Vec<(ProcessId, Time)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::Crashed { pid } => Some((pid, e.at)),
                _ => None,
            })
            .collect()
    }

    /// All observations with tag `tag`, as `(time, pid, payload)` triples
    /// in time order.
    pub fn observations<'a>(
        &'a self,
        tag: &'a str,
    ) -> impl Iterator<Item = (Time, ProcessId, &'a Payload)> + 'a {
        self.events.iter().filter_map(move |e| match &e.kind {
            TraceKind::Observation {
                pid,
                tag: t,
                payload,
            } if *t == tag => Some((e.at, *pid, payload)),
            _ => None,
        })
    }

    /// Observations with tag `tag` emitted by `pid`.
    pub fn observations_of<'a>(
        &'a self,
        pid: ProcessId,
        tag: &'a str,
    ) -> impl Iterator<Item = (Time, &'a Payload)> + 'a {
        self.observations(tag)
            .filter(move |(_, p, _)| *p == pid)
            .map(|(t, _, pl)| (t, pl))
    }

    /// The last observation with tag `tag` emitted by `pid`, if any.
    pub fn last_observation_of<'a>(
        &'a self,
        pid: ProcessId,
        tag: &str,
    ) -> Option<(Time, &'a Payload)> {
        self.events.iter().rev().find_map(|e| match &e.kind {
            TraceKind::Observation {
                pid: p,
                tag: t,
                payload,
            } if *p == pid && *t == tag => Some((e.at, payload)),
            _ => None,
        })
    }

    /// A 64-bit FNV-style digest over a canonical word encoding of every
    /// event. Two traces have equal digests iff they recorded the same
    /// events in the same order (modulo hash collisions), independent of
    /// process layout in memory, worker-thread interleaving, or platform
    /// — the fingerprint campaign artifacts use to certify that a replay
    /// reproduced the original run exactly.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        for e in &self.events {
            h.u64(e.at.0);
            match &e.kind {
                TraceKind::Sent {
                    from,
                    to,
                    kind,
                    round,
                } => {
                    h.u64(0);
                    h.pid(*from);
                    h.pid(*to);
                    h.str(kind);
                    h.opt_u64(*round);
                }
                TraceKind::Delivered {
                    from,
                    to,
                    kind,
                    round,
                } => {
                    h.u64(1);
                    h.pid(*from);
                    h.pid(*to);
                    h.str(kind);
                    h.opt_u64(*round);
                }
                TraceKind::Dropped {
                    from,
                    to,
                    kind,
                    reason,
                } => {
                    h.u64(2);
                    h.pid(*from);
                    h.pid(*to);
                    h.str(kind);
                    h.u64(match reason {
                        DropReason::Link => 0,
                        DropReason::ReceiverCrashed => 1,
                        DropReason::Mangled => 2,
                    });
                }
                TraceKind::Crashed { pid } => {
                    h.u64(3);
                    h.pid(*pid);
                }
                TraceKind::Observation { pid, tag, payload } => {
                    h.u64(4);
                    h.pid(*pid);
                    h.str(tag);
                    match payload {
                        Payload::None => h.u64(0),
                        Payload::U64(x) => {
                            h.u64(1);
                            h.u64(*x);
                        }
                        Payload::Pid(p) => {
                            h.u64(2);
                            h.pid(*p);
                        }
                        Payload::Pids(ps) => {
                            h.u64(3);
                            h.u64(ps.len() as u64);
                            for p in ps {
                                h.pid(*p);
                            }
                        }
                        Payload::PidU64(p, x) => {
                            h.u64(4);
                            h.pid(*p);
                            h.u64(*x);
                        }
                        Payload::U64Pair(a, b) => {
                            h.u64(5);
                            h.u64(*a);
                            h.u64(*b);
                        }
                        Payload::Text(s) => {
                            h.u64(6);
                            h.str(s);
                        }
                    }
                }
            }
        }
        h.finish()
    }

    /// Count sent messages matching a predicate on `(kind, round)`.
    pub fn count_sent(&self, mut pred: impl FnMut(&'static str, Option<u64>) -> bool) -> u64 {
        self.events
            .iter()
            .filter(|e| match e.kind {
                TraceKind::Sent { kind, round, .. } => pred(kind, round),
                _ => false,
            })
            .count() as u64
    }
}

/// Incremental FNV-1a (64-bit) with length-prefixed strings, so the
/// encoding is unambiguous (no concatenation collisions).
///
/// Public because the same canonical word-folding digest underpins the
/// model checker's state hashing (`fd-mc` keys its visited set on the
/// exact fold [`Trace::digest`] uses) — one digest definition, one set
/// of collision properties, everywhere.
pub struct Fnv(u64);

impl Fnv {
    /// A fresh digest at the standard FNV-1a offset basis.
    pub fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Continue folding from a previously [`finish`](Fnv::finish)ed
    /// state — the incremental form the kernel's per-process history
    /// hashes use (fold one event, store, resume at the next event).
    pub fn resume(state: u64) -> Fnv {
        Fnv(state)
    }

    /// Fold one 64-bit word: FNV-1a's xor-multiply, applied to whole
    /// words instead of bytes, plus a rotate so high-order bits feed
    /// back into future low-order positions (a bare multiply only moves
    /// information upward). Byte-serial FNV's 8-step dependency chain
    /// per word dominated campaign sweep profiles; word folding keeps
    /// the digest deterministic and platform-independent at an eighth
    /// of the serial work.
    #[inline]
    pub fn u64(&mut self, x: u64) {
        self.0 = (self.0 ^ x)
            .wrapping_mul(0x0000_0100_0000_01b3)
            .rotate_left(29);
    }

    /// Fold a process id.
    pub fn pid(&mut self, p: ProcessId) {
        self.u64(p.0 as u64);
    }

    /// Fold a string, length-prefixed.
    pub fn str(&mut self, s: &str) {
        // The length prefix disambiguates the zero-padded final chunk.
        let bytes = s.as_bytes();
        self.u64(bytes.len() as u64);
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            // fd-lint: allow(HP001, reason = "chunks_exact(8) yields exactly 8-byte slices; the conversion cannot fail")
            self.u64(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let mut last = 0u64;
        for &b in chunks.remainder() {
            last = (last << 8) | b as u64;
        }
        self.u64(last);
    }

    /// Fold an optional word, tagged so `None` and `Some(0)` differ.
    pub fn opt_u64(&mut self, x: Option<u64>) {
        match x {
            None => self.u64(0),
            Some(v) => {
                self.u64(1);
                self.u64(v);
            }
        }
    }

    /// The digest of everything folded so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::default();
        t.push(
            Time(1),
            TraceKind::Sent {
                from: ProcessId(0),
                to: ProcessId(1),
                kind: "hb",
                round: None,
            },
        );
        t.push(Time(2), TraceKind::Crashed { pid: ProcessId(2) });
        t.push(
            Time(3),
            TraceKind::Observation {
                pid: ProcessId(0),
                tag: "leader",
                payload: Payload::Pid(ProcessId(1)),
            },
        );
        t.push(
            Time(5),
            TraceKind::Observation {
                pid: ProcessId(0),
                tag: "leader",
                payload: Payload::Pid(ProcessId(0)),
            },
        );
        t.push(
            Time(4),
            TraceKind::Observation {
                pid: ProcessId(1),
                tag: "leader",
                payload: Payload::Pid(ProcessId(0)),
            },
        );
        t
    }

    #[test]
    fn crashes_extracted() {
        assert_eq!(sample().crashes(), vec![(ProcessId(2), Time(2))]);
    }

    #[test]
    fn observations_filter_by_tag_and_pid() {
        let t = sample();
        assert_eq!(t.observations("leader").count(), 3);
        assert_eq!(t.observations_of(ProcessId(0), "leader").count(), 2);
        let (at, pl) = t.last_observation_of(ProcessId(0), "leader").unwrap();
        assert_eq!(at, Time(5));
        assert_eq!(pl.as_pid(), Some(ProcessId(0)));
        assert!(t.last_observation_of(ProcessId(2), "leader").is_none());
    }

    #[test]
    fn count_sent_with_predicate() {
        let t = sample();
        assert_eq!(t.count_sent(|k, _| k == "hb"), 1);
        assert_eq!(t.count_sent(|k, _| k == "nope"), 0);
    }

    #[test]
    fn digest_is_stable_and_discriminating() {
        let t = sample();
        assert_eq!(t.digest(), t.digest(), "digest must be a pure function");
        assert_eq!(t.digest(), t.clone().digest());

        // Any change to an event changes the digest.
        let mut other = sample();
        other.push(Time(9), TraceKind::Crashed { pid: ProcessId(0) });
        assert_ne!(t.digest(), other.digest());

        // Event order matters.
        let mut evs = t.events().to_vec();
        evs.swap(0, 1);
        assert_ne!(Trace::from_events(evs).digest(), t.digest());

        assert_eq!(Trace::default().digest(), Trace::default().digest());
        assert_ne!(Trace::default().digest(), t.digest());
    }

    #[test]
    fn payload_accessors() {
        assert_eq!(Payload::U64(3).as_u64(), Some(3));
        assert_eq!(Payload::U64Pair(1, 2).as_u64_pair(), Some((1, 2)));
        assert_eq!(
            Payload::pids([ProcessId(2), ProcessId(0)])
                .as_pids()
                .unwrap(),
            &[ProcessId(0), ProcessId(2)]
        );
        assert_eq!(Payload::None.as_pid(), None);
    }
}
