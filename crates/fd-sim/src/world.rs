//! The simulation kernel.
//!
//! A [`World`] owns `n` actors, the event queue, the network configuration,
//! and the run's trace/metrics. It executes the standard discrete-event
//! loop: pop the earliest event, advance the clock, dispatch to the target
//! actor, apply the actions the actor queued. Crash-stop failures are
//! events like any other: once a process crashes it receives nothing and
//! its pending timers are discarded, exactly the paper's failure model
//! (crashes are permanent, no recovery).

use crate::actor::{Action, Actor, Context, SimMessage};
use crate::chaos::{self, Intervention, NetChange};
use crate::event::{EventKind, EventQueue, MsgSlot, QueueImpl, QueuedEvent};
use crate::link::LinkMangler;
use crate::metrics::{FxBuildHasher, Metrics};
use crate::process::ProcessId;
use crate::rng::{derive_network_rng, derive_process_rng};
use crate::sched::{ChoicePoint, EnabledEvent, EnabledKind, SchedChoice, Scheduler};
use crate::time::Time;
use crate::topology::NetworkConfig;
use crate::trace::{DropReason, Fnv, Payload, Trace, TraceKind};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::HashSet;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

/// How much of a run the kernel records in its [`Trace`].
///
/// Large-n worlds generate O(n²) messages per heartbeat period; recording
/// each Sent/Delivered pair makes the trace — not the kernel — the
/// scalability wall. `ObsOnly` keeps exactly what the `fd-core` checkers
/// consume (observations and crashes) so detector-class verification
/// stays viable at n = 4096 without an O(messages) trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Record everything: sends, deliveries, drops, observations, crashes.
    #[default]
    Full,
    /// Record only observations, interventions, and crashes — the subset
    /// `FdRun` checkers and timelines of protocol-visible state need.
    ObsOnly,
    /// Record nothing (metrics stay on).
    Off,
}

/// Pre-resolved instrumentation handles for the kernel loop.
///
/// Built once from an [`fd_obs::Registry`] so the hot loop touches only
/// atomics, never the registry lock. Instrumentation is read-only with
/// respect to simulation state — it observes wall clocks and queue
/// depths but never the RNG streams — so a run's trace is byte-identical
/// with observability on or off.
#[derive(Debug)]
pub struct WorldObs {
    /// `sim.events`: kernel events processed.
    events: Arc<fd_obs::Counter>,
    /// Events recorded by this world but not yet flushed to the shared
    /// counter. Flushed on drop (a world's runs end before its metrics
    /// are read), keeping the per-event cost free of atomics.
    pending_events: std::cell::Cell<u64>,
    /// `sim.queue_depth_hwm`: high-water mark of the event queue depth,
    /// sampled at every pop (including the popped event).
    queue_depth_hwm: Arc<fd_obs::Gauge>,
    /// `sim.callback_ns`: wall-clock nanoseconds per actor callback
    /// (`on_start` / `on_message` / `on_timer` / `interact`), including
    /// applying the actions it queued. Sampled 1-in-[`CALLBACK_SAMPLE`]
    /// to keep the sweep overhead within budget (the two `Instant::now`
    /// reads dominate the instrumentation cost); the sampling counter is
    /// deterministic, so which callbacks get timed never depends on wall
    /// time.
    callback_ns: Arc<fd_obs::Histogram>,
    /// Callbacks dispatched so far, for the sampling decision. Lives in
    /// the per-world handle (not the shared histogram) so worlds sample
    /// independently of each other.
    callback_tick: std::cell::Cell<u64>,
    /// This world's own queue-depth high-water mark. The shared gauge is
    /// only touched when this rises, so the steady-state per-event cost
    /// is a comparison, not an atomic RMW.
    local_hwm: std::cell::Cell<u64>,
    /// `chaos.msgs_dropped`: messages dropped by the installed mangler.
    chaos_dropped: Arc<fd_obs::Counter>,
    /// `chaos.msgs_duplicated`: extra deliveries enqueued by the mangler.
    chaos_duplicated: Arc<fd_obs::Counter>,
    /// `chaos.msgs_reordered`: deliveries whose time the mangler skewed.
    chaos_reordered: Arc<fd_obs::Counter>,
    /// `chaos.partitions_active`: high-water mark of concurrently open
    /// partitions (interventions tagged [`crate::chaos::PARTITION`] open
    /// one; [`crate::chaos::HEAL`] closes one).
    partitions_active: Arc<fd_obs::Gauge>,
}

/// Every how-many-th callback `sim.callback_ns` times (a power of two).
pub const CALLBACK_SAMPLE: u64 = 32;

impl WorldObs {
    /// Resolve the kernel metrics in `registry`.
    pub fn new(registry: &fd_obs::Registry) -> WorldObs {
        WorldObs {
            events: registry.counter(fd_obs::keys::SIM_EVENTS),
            pending_events: std::cell::Cell::new(0),
            queue_depth_hwm: registry.gauge(fd_obs::keys::SIM_QUEUE_DEPTH_HWM),
            callback_ns: registry.histogram(fd_obs::keys::SIM_CALLBACK_NS),
            callback_tick: std::cell::Cell::new(0),
            local_hwm: std::cell::Cell::new(0),
            chaos_dropped: registry.counter(fd_obs::keys::CHAOS_MSGS_DROPPED),
            chaos_duplicated: registry.counter(fd_obs::keys::CHAOS_MSGS_DUPLICATED),
            chaos_reordered: registry.counter(fd_obs::keys::CHAOS_MSGS_REORDERED),
            partitions_active: registry.gauge(fd_obs::keys::CHAOS_PARTITIONS_ACTIVE),
        }
    }

    /// Deterministic 1-in-[`CALLBACK_SAMPLE`] decision.
    fn sample_callback(&self) -> bool {
        let tick = self.callback_tick.get();
        self.callback_tick.set(tick.wrapping_add(1));
        tick & (CALLBACK_SAMPLE - 1) == 0
    }

    /// Record one processed event at queue depth `depth`.
    fn record_event(&self, depth: u64) {
        self.pending_events.set(self.pending_events.get() + 1);
        if depth > self.local_hwm.get() {
            self.local_hwm.set(depth);
            self.queue_depth_hwm.record_max(depth);
        }
    }
}

impl Clone for WorldObs {
    /// A clone shares the registry handles but starts with fresh local
    /// state — zero pending events and its own HWM/sampling counters.
    fn clone(&self) -> WorldObs {
        WorldObs {
            events: Arc::clone(&self.events),
            pending_events: std::cell::Cell::new(0),
            queue_depth_hwm: Arc::clone(&self.queue_depth_hwm),
            callback_ns: Arc::clone(&self.callback_ns),
            callback_tick: std::cell::Cell::new(0),
            local_hwm: std::cell::Cell::new(0),
            chaos_dropped: Arc::clone(&self.chaos_dropped),
            chaos_duplicated: Arc::clone(&self.chaos_duplicated),
            chaos_reordered: Arc::clone(&self.chaos_reordered),
            partitions_active: Arc::clone(&self.partitions_active),
        }
    }
}

impl Drop for WorldObs {
    fn drop(&mut self) {
        let pending = self.pending_events.replace(0);
        if pending > 0 {
            self.events.add(pending);
        }
    }
}

/// Configures and constructs a [`World`].
pub struct WorldBuilder {
    net: NetworkConfig,
    seed: u64,
    crashes: Vec<(ProcessId, Time)>,
    trace_mode: TraceMode,
    max_events: u64,
    obs: Option<WorldObs>,
    queue: QueueImpl,
    track_state: bool,
}

impl WorldBuilder {
    /// Start from a network configuration (which fixes `n`).
    pub fn new(net: NetworkConfig) -> WorldBuilder {
        WorldBuilder {
            net,
            seed: 0,
            crashes: Vec::new(),
            trace_mode: TraceMode::Full,
            max_events: u64::MAX,
            obs: None,
            queue: QueueImpl::default(),
            track_state: false,
        }
    }

    /// Select the event-queue implementation (default: the timer wheel).
    /// Both produce byte-identical runs; the classic heap exists for the
    /// golden-digest equivalence tests and as a fallback.
    pub fn queue_impl(mut self, imp: QueueImpl) -> Self {
        self.queue = imp;
        self
    }

    /// Set the run seed. Identical seeds replay identical runs.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Schedule `pid` to crash at `at`.
    pub fn crash_at(mut self, pid: ProcessId, at: Time) -> Self {
        assert!(pid.index() < self.net.n(), "crash target out of range");
        self.crashes.push((pid, at));
        self
    }

    /// Enable or disable full trace recording (metrics are always on).
    /// Shorthand for [`trace_mode`](WorldBuilder::trace_mode) with
    /// [`TraceMode::Full`] / [`TraceMode::Off`].
    pub fn record_trace(mut self, on: bool) -> Self {
        self.trace_mode = if on { TraceMode::Full } else { TraceMode::Off };
        self
    }

    /// Select how much of the run the trace records (default: full).
    pub fn trace_mode(mut self, mode: TraceMode) -> Self {
        self.trace_mode = mode;
        self
    }

    /// Abort the run (panic) if it processes more than `max` events —
    /// a guard against accidental zero-delay timer loops.
    pub fn max_events(mut self, max: u64) -> Self {
        self.max_events = max;
        self
    }

    /// Maintain an incremental state digest during the run (see
    /// [`World::state_digest`]). Off by default — it Debug-formats every
    /// message at enqueue and dequeue time, which only the model
    /// checker's visited-set pruning can justify. Sound only over
    /// RNG-free networks ([`NetworkConfig::is_rng_free`]) with no
    /// mangler installed; [`World::run_scheduled_until`] asserts this.
    pub fn track_state(mut self, on: bool) -> Self {
        self.track_state = on;
        self
    }

    /// Attach kernel instrumentation (see [`WorldObs`]). Off by default;
    /// when on, the kernel records events processed, the event-queue
    /// high-water mark, and per-callback wall time. Never affects the
    /// run itself: traces and metrics are identical either way.
    pub fn observe(mut self, obs: WorldObs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Instantiate the actors (via `make(pid, n)`) and build the world.
    pub fn build<A, F>(self, mut make: F) -> World<A>
    where
        A: Actor,
        F: FnMut(ProcessId, usize) -> A,
    {
        let n = self.net.n();
        assert!(n > 0, "a world needs at least one process");
        let mut metrics = Metrics::default();
        metrics.presize(n);
        let mut world = World {
            n,
            now: Time::ZERO,
            queue: EventQueue::with_impl(self.queue),
            actors: (0..n).map(|i| make(ProcessId(i), n)).collect(),
            rngs: (0..n).map(|i| derive_process_rng(self.seed, i)).collect(),
            crashed: vec![false; n],
            epochs: vec![0; n],
            net: self.net,
            net_rng: derive_network_rng(self.seed),
            cancelled: HashSet::default(),
            next_timer_id: 0,
            trace: Trace::default(),
            metrics,
            trace_mode: self.trace_mode,
            max_events: self.max_events,
            obs: self.obs,
            started: false,
            scratch: Vec::new(),
            batch: Vec::new(),
            batch_pending: 0,
            trace_hwm: 0,
            mangler: None,
            partitions_open: 0,
            track_state: self.track_state,
            proc_hash: vec![0; n],
            queue_hash: 0,
            env_hash: 0,
        };
        for (pid, at) in self.crashes {
            world.push_event(at, EventKind::Crash { pid });
        }
        world
    }
}

/// A running simulation of `n` processes.
///
/// Per-process state lives in parallel struct-of-arrays vectors rather
/// than one `Vec<Slot>`: the kernel's hottest checks (is the delivery
/// target crashed? is the timer's epoch current?) then scan dense
/// `Vec<bool>` / `Vec<u32>` instead of striding actor-sized structs —
/// at n = 4096 the actor payload would evict the flags from cache.
pub struct World<A: Actor> {
    n: usize,
    now: Time,
    queue: EventQueue<A::Msg>,
    actors: Vec<A>,
    rngs: Vec<SmallRng>,
    crashed: Vec<bool>,
    /// Timer-validity epochs: timers armed in epoch `e` fire only while
    /// the process is still in epoch `e`. A warm restart (see
    /// [`crate::chaos::NetChange::Restart`]) advances the epoch so
    /// pre-crash timer chains cannot resurrect.
    epochs: Vec<u32>,
    net: NetworkConfig,
    net_rng: SmallRng,
    /// Cancelled timer ids, consumed when the dead timer fires. Fx-hashed
    /// and guarded by an `is_empty` fast path: most protocols never cancel
    /// a timer, and the probe sits on the per-timer-event hot path.
    cancelled: HashSet<u64, FxBuildHasher>,
    next_timer_id: u64,
    trace: Trace,
    metrics: Metrics,
    trace_mode: TraceMode,
    max_events: u64,
    obs: Option<WorldObs>,
    started: bool,
    scratch: Vec<Action<A::Msg>>,
    /// Same-instant event batch drained from the queue by
    /// [`run_until_time`](World::run_until_time); reused across batches.
    batch: Vec<QueuedEvent<A::Msg>>,
    /// Events of the current batch not yet processed — added to the
    /// queue length so the `sim.queue_depth_hwm` gauge stays honest
    /// while a batch is in flight.
    batch_pending: u64,
    /// Largest trace length seen across resets — the reserve hint that
    /// turns per-seed trace growth into one up-front arena allocation.
    trace_hwm: usize,
    /// The installed message mangler, if any (see
    /// [`crate::chaos::NetChange::SetMangler`]). Applied in `route` on
    /// top of each non-loopback link's base verdict.
    mangler: Option<LinkMangler>,
    /// Partitions currently open, counted by intervention tags
    /// ([`chaos::PARTITION`] opens, [`chaos::HEAL`] closes); feeds the
    /// `chaos.partitions_active` gauge when instrumented.
    partitions_open: u64,
    /// Whether the incremental state digest below is maintained (see
    /// [`WorldBuilder::track_state`]).
    track_state: bool,
    /// Per-process history hashes: each scheduler-dispatched event that
    /// reaches process `i` (a delivery it handles, a timer that fires)
    /// folds its content key into `proc_hash[i]`. Order-sensitive per
    /// process, blind to interleaving across processes — exactly the
    /// equivalence partial-order reduction exploits.
    proc_hash: Vec<u64>,
    /// Commutative multiset hash (wrapping sum of content keys) of every
    /// pending event — queued or drained-but-unconsumed. Push adds,
    /// consumption subtracts, so insertion order never matters.
    queue_hash: u64,
    /// History hash of consumed global-state events (crashes and
    /// interventions), order-sensitive: these don't commute with
    /// anything.
    env_hash: u64,
}

impl<A: Actor> World<A> {
    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The recorded trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The metrics so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Read access to an actor's state (e.g. to query its failure
    /// detector output from experiment code).
    pub fn actor(&self, pid: ProcessId) -> &A {
        &self.actors[pid.index()]
    }

    /// Whether `pid` has crashed.
    pub fn is_crashed(&self, pid: ProcessId) -> bool {
        self.crashed[pid.index()]
    }

    /// The processes that have not crashed (so far).
    pub fn correct(&self) -> Vec<ProcessId> {
        (0..self.n)
            .map(ProcessId)
            .filter(|p| !self.is_crashed(*p))
            .collect()
    }

    /// Schedule a crash after construction.
    pub fn schedule_crash(&mut self, pid: ProcessId, at: Time) {
        assert!(at >= self.now, "cannot schedule a crash in the past");
        self.push_event(at, EventKind::Crash { pid });
    }

    /// Schedule a fault-injection [`Intervention`] to fire at `at`. The
    /// intervention flows through the ordinary event queue (strict
    /// `(time, sequence)` order, byte-identical replay) and records an
    /// observation with its tag and payload when it fires — the fault
    /// schedule is part of the trace, not a side channel.
    pub fn schedule_intervention(&mut self, at: Time, intervention: Intervention) {
        assert!(
            at >= self.now,
            "cannot schedule an intervention in the past"
        );
        if let NetChange::SetLinks(links) = &intervention.change {
            for (from, to, _) in links {
                assert!(
                    from.index() < self.n && to.index() < self.n,
                    "intervention link endpoints out of range"
                );
            }
        }
        if let NetChange::Crash(pid) | NetChange::Restart(pid) = intervention.change {
            assert!(pid.index() < self.n, "intervention target out of range");
        }
        self.push_event(at, EventKind::Intervention(Box::new(intervention)));
    }

    /// Interact with a live actor outside of message/timer dispatch —
    /// e.g. call `propose(v)` on a consensus component. The closure gets
    /// the actor and a full [`Context`], so it may send and arm timers.
    /// Interactions with crashed processes are ignored.
    pub fn interact(&mut self, pid: ProcessId, f: impl FnOnce(&mut A, &mut Context<'_, A::Msg>)) {
        self.ensure_started();
        if self.crashed[pid.index()] {
            return;
        }
        self.dispatch(pid, f);
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.n {
            let pid = ProcessId(i);
            self.dispatch(pid, |actor, ctx| actor.on_start(ctx));
        }
    }

    fn dispatch(&mut self, pid: ProcessId, f: impl FnOnce(&mut A, &mut Context<'_, A::Msg>)) {
        // Owned clone of the histogram handle: a borrowing span would
        // hold `&self.obs` across the mutable kernel work below.
        let timing = match &self.obs {
            // fd-lint: allow(ND002, reason = "observability-only span timing; feeds histograms, never simulation state or RNG, so digests are identical with metrics on or off")
            Some(o) if o.sample_callback() => Some((Arc::clone(&o.callback_ns), Instant::now())),
            _ => None,
        };
        let now = self.now;
        let n = self.n;
        let mut actions = std::mem::take(&mut self.scratch);
        actions.clear();
        {
            let mut ctx = Context {
                me: pid,
                n,
                now,
                // fd-lint: allow(HP001, reason = "one rng per process; pid.index() < n by construction")
                rng: &mut self.rngs[pid.index()],
                actions: &mut actions,
                next_timer_id: &mut self.next_timer_id,
            };
            // fd-lint: allow(HP001, reason = "one actor per process; pid.index() < n by construction")
            f(&mut self.actors[pid.index()], &mut ctx);
        }
        for action in actions.drain(..) {
            self.apply(pid, action);
        }
        self.scratch = actions;
        if let Some((hist, started)) = timing {
            let ns = started.elapsed().as_nanos();
            hist.record(u64::try_from(ns).unwrap_or(u64::MAX));
        }
    }

    /// Whether message-level events (sent/delivered/dropped) are traced.
    #[inline]
    fn trace_full(&self) -> bool {
        self.trace_mode == TraceMode::Full
    }

    /// Whether observation-level events (observations, interventions,
    /// crashes) are traced.
    #[inline]
    fn trace_obs(&self) -> bool {
        self.trace_mode != TraceMode::Off
    }

    /// Route one message over the `from → to` link: record the send,
    /// sample the link model, and either enqueue the delivery or record
    /// the drop. The shared tail of [`Action::Send`] and each
    /// destination of [`Action::Broadcast`].
    fn route(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        kind: &'static str,
        round: Option<u64>,
        msg: MsgSlot<A::Msg>,
    ) {
        self.metrics.record_sent(from, kind, round);
        if self.trace_full() {
            self.trace.push(
                self.now,
                TraceKind::Sent {
                    from,
                    to,
                    kind,
                    round,
                },
            );
        }
        match self
            .net
            .link(from, to)
            .deliver_at(self.now, &mut self.net_rng)
        {
            Some(mut at) => {
                // The mangler perturbs the base model's verdict. RNG
                // draws happen in a fixed order (drop, reorder,
                // duplicate) and only for non-zero probabilities, so a
                // given plan+seed always consumes the same stream.
                // Loopback is exempt: self-delivery is internal
                // scheduling, not a network hop.
                if let (Some(m), false) = (self.mangler, from == to) {
                    if m.drop > 0.0 && self.net_rng.gen_bool(m.drop.clamp(0.0, 1.0)) {
                        self.metrics.record_mangled_dropped();
                        if let Some(obs) = &self.obs {
                            obs.chaos_dropped.inc();
                        }
                        if self.trace_full() {
                            self.trace.push(
                                self.now,
                                TraceKind::Dropped {
                                    from,
                                    to,
                                    kind,
                                    reason: DropReason::Mangled,
                                },
                            );
                        }
                        return;
                    }
                    let skew = m.skew.0.max(1);
                    if m.reorder > 0.0 && self.net_rng.gen_bool(m.reorder.clamp(0.0, 1.0)) {
                        at += crate::time::SimDuration(self.net_rng.gen_range(1..=skew));
                        self.metrics.record_reordered();
                        if let Some(obs) = &self.obs {
                            obs.chaos_reordered.inc();
                        }
                    }
                    if m.duplicate > 0.0 && self.net_rng.gen_bool(m.duplicate.clamp(0.0, 1.0)) {
                        let dup_at =
                            at + crate::time::SimDuration(self.net_rng.gen_range(1..=skew));
                        self.metrics.record_duplicated();
                        if let Some(obs) = &self.obs {
                            obs.chaos_duplicated.inc();
                        }
                        // Both copies share one allocation; the original
                        // is enqueued first so equal delivery instants
                        // keep the original ahead of its duplicate.
                        let rc = match msg {
                            // fd-lint: allow(HP002, reason = "one refcounted allocation per duplicated send is the sharing strategy that keeps the per-recipient path alloc-free")
                            MsgSlot::Inline(m) => Rc::new(m),
                            MsgSlot::Shared(rc) => rc,
                        };
                        self.push_event(
                            at,
                            EventKind::Deliver {
                                from,
                                to,
                                msg: MsgSlot::Shared(Rc::clone(&rc)),
                            },
                        );
                        self.push_event(
                            dup_at,
                            EventKind::Deliver {
                                from,
                                to,
                                msg: MsgSlot::Shared(rc),
                            },
                        );
                        return;
                    }
                }
                // Enforce strict causality: delivery strictly after
                // the send instant in queue order is already
                // guaranteed by the sequence number; a zero sampled
                // delay is therefore fine.
                self.push_event(at, EventKind::Deliver { from, to, msg });
            }
            None => {
                self.metrics.record_dropped();
                if self.trace_full() {
                    self.trace.push(
                        self.now,
                        TraceKind::Dropped {
                            from,
                            to,
                            kind,
                            reason: DropReason::Link,
                        },
                    );
                }
            }
        }
    }

    fn apply(&mut self, from: ProcessId, action: Action<A::Msg>) {
        match action {
            Action::Send { to, msg } => {
                let kind = msg.kind();
                let round = msg.round();
                self.route(from, to, kind, round, MsgSlot::Inline(msg));
            }
            Action::Broadcast { include_self, msg } => {
                // Fan out in identity order — the same per-destination
                // metric, trace, link-sampling, and enqueue sequence the
                // sender's own per-destination Send loop used to
                // produce. Small drop-free payloads (heartbeats and other
                // plain-data messages) are cloned per destination: no
                // shared allocation, no pointer chase at delivery time.
                // Anything bigger or owning heap data shares one `Rc`.
                let kind = msg.kind();
                let round = msg.round();
                if std::mem::size_of::<A::Msg>() <= 16 && !std::mem::needs_drop::<A::Msg>() {
                    for i in 0..self.n {
                        let to = ProcessId(i);
                        if !include_self && to == from {
                            continue;
                        }
                        // fd-lint: allow(HP002, reason = "inline arm is gated to 16-byte no-drop payloads, so the clone is a register copy")
                        self.route(from, to, kind, round, MsgSlot::Inline(msg.clone()));
                    }
                } else {
                    // fd-lint: allow(HP002, reason = "one shared allocation per broadcast, amortized over n recipients")
                    let shared = Rc::new(msg);
                    for i in 0..self.n {
                        let to = ProcessId(i);
                        if !include_self && to == from {
                            continue;
                        }
                        self.route(from, to, kind, round, MsgSlot::Shared(Rc::clone(&shared)));
                    }
                }
            }
            Action::SetTimer { id, after, tag } => {
                // fd-lint: allow(HP001, reason = "epochs has one entry per process; from.index() < n by construction")
                let epoch = self.epochs[from.index()];
                self.push_event(
                    self.now + after,
                    EventKind::Timer {
                        pid: from,
                        id,
                        tag,
                        epoch,
                    },
                );
            }
            Action::CancelTimer { id } => {
                self.cancelled.insert(id.0);
            }
            Action::Observe { tag, payload } => {
                if self.trace_obs() {
                    self.trace.push(
                        self.now,
                        TraceKind::Observation {
                            pid: from,
                            tag,
                            payload,
                        },
                    );
                }
            }
        }
    }

    fn process(&mut self, ev: QueuedEvent<A::Msg>) {
        self.now = ev.at;
        self.metrics.record_event();
        if let Some(obs) = &self.obs {
            // Depth at pop time, counting the event being processed.
            obs.record_event(self.queue.len() as u64 + 1 + self.batch_pending);
        }
        // fd-lint: allow(HP001, reason = "the event-budget tripwire exists to panic: a zero-delay loop must halt the run, not spin")
        assert!(
            self.metrics.events_processed() <= self.max_events,
            "event budget exceeded ({}): possible zero-delay loop",
            self.max_events
        );
        match ev.kind {
            EventKind::Deliver { from, to, msg } => {
                // fd-lint: allow(HP001, reason = "crashed has one flag per process; to.index() < n by construction")
                if self.crashed[to.index()] {
                    self.metrics.record_dropped();
                    if self.trace_full() {
                        self.trace.push(
                            self.now,
                            TraceKind::Dropped {
                                from,
                                to,
                                kind: msg.get().kind(),
                                reason: DropReason::ReceiverCrashed,
                            },
                        );
                    }
                    return;
                }
                self.metrics.record_delivered();
                if self.trace_full() {
                    self.trace.push(
                        self.now,
                        TraceKind::Delivered {
                            from,
                            to,
                            kind: msg.get().kind(),
                            round: msg.get().round(),
                        },
                    );
                }
                self.dispatch(to, |actor, ctx| actor.on_message(ctx, from, msg.take()));
            }
            EventKind::Timer {
                pid,
                id,
                tag,
                epoch,
            } => {
                let i = pid.index();
                if (!self.cancelled.is_empty() && self.cancelled.remove(&id.0))
                    // fd-lint: allow(HP001, reason = "crashed has one flag per process; timer pids are < n by construction")
                    || self.crashed[i]
                    // fd-lint: allow(HP001, reason = "epochs has one entry per process; timer pids are < n by construction")
                    || self.epochs[i] != epoch
                {
                    return;
                }
                self.dispatch(pid, |actor, ctx| actor.on_timer(ctx, tag));
            }
            EventKind::Crash { pid } => self.crash_now(pid),
            EventKind::Intervention(iv) => self.apply_intervention(*iv),
        }
    }

    /// Mark `pid` crashed (idempotent) and record the trace event.
    fn crash_now(&mut self, pid: ProcessId) {
        // fd-lint: allow(HP001, reason = "crashed has one flag per process; pid.index() < n by construction")
        if !self.crashed[pid.index()] {
            // fd-lint: allow(HP001, reason = "crashed has one flag per process; pid.index() < n by construction")
            self.crashed[pid.index()] = true;
            if self.trace_obs() {
                self.trace.push(self.now, TraceKind::Crashed { pid });
            }
        }
    }

    /// Apply a fired intervention: record its trace annotation, keep the
    /// partition gauge honest, then mutate the environment.
    fn apply_intervention(&mut self, iv: Intervention) {
        let Intervention {
            tag,
            payload,
            change,
        } = iv;
        if self.trace_obs() {
            self.trace.push(
                self.now,
                TraceKind::Observation {
                    pid: ProcessId(0),
                    tag,
                    payload,
                },
            );
        }
        if tag == chaos::PARTITION {
            self.partitions_open += 1;
            if let Some(obs) = &self.obs {
                obs.partitions_active.record_max(self.partitions_open);
            }
        } else if tag == chaos::HEAL {
            self.partitions_open = self.partitions_open.saturating_sub(1);
        }
        match change {
            NetChange::Annotate => {}
            NetChange::SetLinks(links) => {
                for (from, to, model) in links {
                    self.net.set_link(from, to, model);
                }
            }
            NetChange::SetDefault(model) => self.net.set_default(model),
            NetChange::SetMangler(m) => self.mangler = m,
            NetChange::Crash(pid) => self.crash_now(pid),
            NetChange::Restart(pid) => {
                let i = pid.index();
                // fd-lint: allow(HP001, reason = "crashed has one flag per process; intervention pids are < n by construction")
                if self.crashed[i] {
                    // fd-lint: allow(HP001, reason = "crashed has one flag per process; intervention pids are < n by construction")
                    self.crashed[i] = false;
                    // fd-lint: allow(HP001, reason = "epochs has one entry per process; intervention pids are < n by construction")
                    self.epochs[i] += 1;
                    self.dispatch(pid, |actor, ctx| actor.on_start(ctx));
                }
            }
        }
    }

    /// Process a single event. Returns its time, or `None` if the queue
    /// was empty.
    // fd-lint: hot_path
    pub fn step(&mut self) -> Option<Time> {
        self.ensure_started();
        let ev = self.queue.pop()?;
        self.process(ev);
        Some(self.now)
    }

    /// Run every event scheduled at or before `until`, then advance the
    /// clock to `until`.
    ///
    /// Events are drained one *timestamp* at a time: everything due at
    /// the earliest pending instant comes out of the queue in a single
    /// batch, then is processed in `(time, seq)` order. This is safe —
    /// anything an event at time `t` schedules for time `t` gets a
    /// sequence number above every queued `t`-event, so it lands in the
    /// next batch in exactly the order a one-at-a-time loop would see —
    /// and it amortizes queue bookkeeping over whole broadcast fan-ins,
    /// which at large n share one delivery instant thousands of ways.
    pub fn run_until_time(&mut self, until: Time) {
        self.ensure_started();
        let mut batch = std::mem::take(&mut self.batch);
        loop {
            let drained = self.queue.pop_due_batch(until, &mut batch);
            if drained == 0 {
                break;
            }
            for (i, ev) in batch.drain(..).enumerate() {
                self.batch_pending = (drained - 1 - i) as u64;
                self.process(ev);
            }
        }
        self.batch_pending = 0;
        self.batch = batch;
        self.now = self.now.max(until);
    }

    /// Run until `pred(self)` holds (checked before the first event and
    /// after every event) or the clock would pass `deadline`. Returns
    /// `true` iff the predicate was met.
    pub fn run_until(&mut self, deadline: Time, mut pred: impl FnMut(&Self) -> bool) -> bool {
        self.ensure_started();
        if pred(self) {
            return true;
        }
        while let Some(ev) = self.queue.pop_due(deadline) {
            self.process(ev);
            if pred(self) {
                return true;
            }
        }
        self.now = self.now.max(deadline);
        false
    }

    /// Run until no events remain at all — quiescence — or the event
    /// budget trips. Returns the time of the last processed event.
    /// Protocols with self-rearming timers never quiesce; use
    /// [`run_until_time`](World::run_until_time) for those.
    pub fn run_to_quiescence(&mut self) -> Time {
        self.ensure_started();
        while let Some(ev) = self.queue.pop() {
            self.process(ev);
        }
        self.now
    }

    /// Consume the world, returning its trace and metrics.
    pub fn into_results(self) -> (Trace, Metrics) {
        (self.trace, self.metrics)
    }

    /// Take the trace and metrics out of a world that is about to be
    /// [`reset`](World::reset) — the reuse-path twin of
    /// [`into_results`](World::into_results).
    pub fn take_results(&mut self) -> (Trace, Metrics) {
        self.trace_hwm = self.trace_hwm.max(self.trace.len());
        (
            std::mem::take(&mut self.trace),
            std::mem::take(&mut self.metrics),
        )
    }

    /// Re-arm this world for a fresh run of `seed` over `net`, reusing
    /// every allocation the previous run warmed up: the event queue's
    /// spans and buckets, the actors vector, the action scratch buffer,
    /// and (via a high-water-mark `reserve`) the trace arena. `n` may
    /// change between runs. Equivalent to building a new world with the
    /// same `record_trace` / `max_events` / instrumentation settings —
    /// runs after a reset are byte-identical to runs in a fresh world.
    ///
    /// Crashes are not carried over; schedule them with
    /// [`schedule_crash`](World::schedule_crash) after the reset. The
    /// same goes for fault injection: pending interventions die with the
    /// queue, the installed mangler (if any) is removed, and the
    /// partition count returns to zero.
    pub fn reset<F>(&mut self, net: NetworkConfig, seed: u64, mut make: F)
    where
        F: FnMut(ProcessId, usize) -> A,
    {
        let n = net.n();
        assert!(n > 0, "a world needs at least one process");
        self.trace_hwm = self.trace_hwm.max(self.trace.len());
        self.n = n;
        self.now = Time::ZERO;
        self.queue.reset();
        self.actors.clear();
        self.actors.extend((0..n).map(|i| make(ProcessId(i), n)));
        self.rngs.clear();
        self.rngs
            .extend((0..n).map(|i| derive_process_rng(seed, i)));
        self.crashed.clear();
        self.crashed.resize(n, false);
        self.epochs.clear();
        self.epochs.resize(n, 0);
        self.net = net;
        self.net_rng = derive_network_rng(seed);
        self.cancelled.clear();
        self.next_timer_id = 0;
        self.mangler = None;
        self.partitions_open = 0;
        self.proc_hash.clear();
        self.proc_hash.resize(n, 0);
        self.queue_hash = 0;
        self.env_hash = 0;
        self.trace
            .reset_with_capacity(if self.trace_obs() { self.trace_hwm } else { 0 });
        self.metrics = Metrics::default();
        self.metrics.presize(n);
        self.started = false;
    }

    /// Record an observation on behalf of the harness itself (pid-less
    /// events are attributed to process 0; used rarely, e.g. to mark
    /// scenario phases in traces).
    pub fn annotate(&mut self, tag: &'static str, payload: Payload) {
        if self.trace_obs() {
            self.trace.push(
                self.now,
                TraceKind::Observation {
                    pid: ProcessId(0),
                    tag,
                    payload,
                },
            );
        }
    }

    /// Enqueue `kind` at `at`, folding its content key into the pending
    /// multiset hash when state tracking is on. Every kernel push goes
    /// through here so the digest can never miss an event.
    fn push_event(&mut self, at: Time, kind: EventKind<A::Msg>) {
        if self.track_state {
            let key = Self::event_key(at, &kind);
            self.queue_hash = self.queue_hash.wrapping_add(key);
        }
        self.queue.push(at, kind);
    }

    /// A content-based digest of one event: due time, kind, endpoints,
    /// and (for deliveries) the message's `Debug` form — everything
    /// *except* the sequence number, which is an artifact of scheduling
    /// order. Two interleavings that leave "the same" event pending
    /// therefore agree on its key, which is what both the pending-set
    /// multiset hash and `fd-mc`'s sleep sets rely on. Timer ids are
    /// likewise excluded: they come from a global counter whose values
    /// depend on dispatch order, and actors use them only as opaque
    /// cancellation handles.
    fn event_key(at: Time, kind: &EventKind<A::Msg>) -> u64 {
        let mut h = Fnv::new();
        h.u64(at.0);
        match kind {
            EventKind::Deliver { from, to, msg } => {
                h.u64(0);
                h.pid(*from);
                h.pid(*to);
                // fd-lint: allow(HP002, reason = "only reached with state tracking on (model-checking worlds, n <= 4); the default campaign/bench path never computes content keys")
                h.str(&format!("{:?}", msg.get()));
            }
            EventKind::Timer {
                pid, tag, epoch, ..
            } => {
                h.u64(1);
                h.pid(*pid);
                h.u64(tag.ns as u64);
                h.u64(tag.kind as u64);
                h.u64(tag.data);
                h.u64(*epoch as u64);
            }
            EventKind::Crash { pid } => {
                h.u64(2);
                h.pid(*pid);
            }
            EventKind::Intervention(iv) => {
                h.u64(3);
                h.str(iv.tag);
            }
        }
        h.finish()
    }

    /// Scheduler-facing summary of a drained event (see
    /// [`EnabledEvent`]). The key is computed unconditionally — partial
    /// order reduction needs it even when the visited-set digest is off.
    fn summarize(ev: &QueuedEvent<A::Msg>) -> EnabledEvent {
        EnabledEvent {
            at: ev.at,
            seq: ev.seq,
            key: Self::event_key(ev.at, &ev.kind),
            kind: match &ev.kind {
                EventKind::Deliver { from, to, msg } => EnabledKind::Deliver {
                    from: *from,
                    to: *to,
                    msg_kind: msg.get().kind(),
                },
                EventKind::Timer { pid, tag, .. } => EnabledKind::Timer {
                    pid: *pid,
                    tag: *tag,
                },
                EventKind::Crash { pid } => EnabledKind::Crash { pid: *pid },
                EventKind::Intervention(_) => EnabledKind::Intervention,
            },
        }
    }

    /// Account for one consumed pending event (fired or force-dropped):
    /// remove it from the pending multiset and, if it actually reaches a
    /// process (a delivery to a live target, a timer that passes the
    /// cancelled/crashed/epoch filters), fold it into that process's
    /// history hash. Crashes and interventions fold into the global
    /// environment history instead. Events the kernel silently discards
    /// (delivery to a crashed process, stale timer) touch no history:
    /// their outcome is fully determined by state already in the digest.
    fn fold_consumed(&mut self, key: u64, ev: &QueuedEvent<A::Msg>) {
        self.queue_hash = self.queue_hash.wrapping_sub(key);
        match &ev.kind {
            EventKind::Deliver { to, .. } => {
                let i = to.index();
                if !self.crashed[i] {
                    let mut h = Fnv::resume(self.proc_hash[i]);
                    h.u64(key);
                    self.proc_hash[i] = h.finish();
                }
            }
            EventKind::Timer { pid, id, epoch, .. } => {
                let i = pid.index();
                let cancelled = !self.cancelled.is_empty() && self.cancelled.contains(&id.0);
                if !cancelled && !self.crashed[i] && self.epochs[i] == *epoch {
                    let mut h = Fnv::resume(self.proc_hash[i]);
                    h.u64(key);
                    self.proc_hash[i] = h.finish();
                }
            }
            EventKind::Crash { .. } | EventKind::Intervention(_) => {
                let mut h = Fnv::resume(self.env_hash);
                h.u64(key);
                self.env_hash = h.finish();
            }
        }
    }

    /// The incremental state digest: clock, pending-event multiset,
    /// per-process histories, environment history, crash flags, and
    /// restart epochs, folded with the same FNV the trace digest uses.
    ///
    /// For deterministic actors over RNG-free links, equal digests imply
    /// equal futures: each actor's state is a function of its dispatch
    /// history (plus the identical pre-run `on_start`/`interact` prefix,
    /// which is deliberately not folded), and what remains to happen is
    /// the pending multiset plus the environment. Two *equivalent*
    /// interleavings — same per-process dispatch orders, same global
    /// event order — produce equal digests even though their traces
    /// differ, which is exactly what makes this usable as a visited-set
    /// key. Meaningful only with [`WorldBuilder::track_state`] on.
    pub fn state_digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.now.0);
        h.u64(self.queue_hash);
        h.u64(self.env_hash);
        for &p in &self.proc_hash {
            h.u64(p);
        }
        let mut word = 0u64;
        for (i, &c) in self.crashed.iter().enumerate() {
            if c {
                word |= 1 << (i & 63);
            }
            if i & 63 == 63 {
                h.u64(word);
                word = 0;
            }
        }
        h.u64(word);
        for &e in &self.epochs {
            h.u64(e as u64);
        }
        h.finish()
    }

    /// Run every event scheduled at or before `until` under an explicit
    /// [`Scheduler`], then advance the clock to `until`.
    ///
    /// This is [`run_until_time`](World::run_until_time) with the one
    /// hard-coded policy — fire same-instant events in `(time, seq)`
    /// order — replaced by a choice point: all events due at the current
    /// earliest instant form the *enabled set*, and the scheduler picks
    /// which fires next (or force-drops a delivery). After each firing,
    /// events the handler scheduled for the same instant join the
    /// enabled set (they carry higher seqs, so the canonical choice of
    /// index 0 walks the exact global `(time, seq)` order). Driving this
    /// with [`CanonicalScheduler`](crate::sched::CanonicalScheduler) is
    /// byte-identical to `run_until_time` — trace, metrics, and gauges.
    pub fn run_scheduled_until(&mut self, until: Time, sched: &mut dyn Scheduler) {
        if self.track_state {
            assert!(
                self.net.is_rng_free() && self.mangler.is_none(),
                "state tracking requires an RNG-free network and no mangler: \
                 shared-stream draws make state hashes schedule-dependent"
            );
        }
        self.ensure_started();
        let mut batch = std::mem::take(&mut self.batch);
        let mut enabled: Vec<EnabledEvent> = Vec::new();
        loop {
            if batch.is_empty() {
                enabled.clear();
                if self.queue.pop_due_batch(until, &mut batch) == 0 {
                    break;
                }
                enabled.extend(batch.iter().map(Self::summarize));
            }
            let t = batch[0].at;
            let choice = {
                let cp = ChoicePoint {
                    now: t,
                    enabled: &enabled,
                    crashed: &self.crashed,
                    state_digest: self.track_state.then(|| self.state_digest()),
                };
                sched.choose(&cp)
            };
            match choice {
                SchedChoice::Event(i) => {
                    assert!(i < batch.len(), "scheduler chose out-of-range event {i}");
                    let ev = batch.remove(i);
                    let info = enabled.remove(i);
                    if self.track_state {
                        self.fold_consumed(info.key, &ev);
                    }
                    self.batch_pending = batch.len() as u64;
                    self.process(ev);
                    // Newly scheduled same-instant events join the
                    // enabled set; nothing earlier than `t` can exist,
                    // so this drains exactly the instant's arrivals.
                    let before = batch.len();
                    self.queue.pop_due_batch(t, &mut batch);
                    enabled.extend(batch[before..].iter().map(Self::summarize));
                }
                SchedChoice::Drop(i) => {
                    assert!(i < batch.len(), "scheduler chose out-of-range drop {i}");
                    let ev = batch.remove(i);
                    let info = enabled.remove(i);
                    let EventKind::Deliver { from, to, msg } = &ev.kind else {
                        panic!("scheduler Drop choice selected a non-delivery event");
                    };
                    if self.track_state {
                        // A forced drop only removes the message from
                        // the pending set — no process observes it.
                        self.queue_hash = self.queue_hash.wrapping_sub(info.key);
                    }
                    self.now = t;
                    self.metrics.record_dropped();
                    if self.trace_full() {
                        self.trace.push(
                            t,
                            TraceKind::Dropped {
                                from: *from,
                                to: *to,
                                kind: msg.get().kind(),
                                reason: DropReason::Link,
                            },
                        );
                    }
                }
            }
        }
        self.batch_pending = 0;
        self.batch = batch;
        self.now = self.now.max(until);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::TimerTag;
    use crate::link::LinkModel;
    use crate::time::SimDuration;

    /// Each process pings its successor on start; a ping is answered with
    /// a pong; receipt of a pong re-arms a timer that pings again.
    pub(crate) struct PingPong {
        pub(crate) pings_seen: u64,
        pub(crate) pongs_seen: u64,
    }

    #[derive(Clone, Debug)]
    pub(crate) enum Pp {
        Ping,
        Pong,
    }
    impl SimMessage for Pp {
        fn kind(&self) -> &'static str {
            match self {
                Pp::Ping => "ping",
                Pp::Pong => "pong",
            }
        }
    }

    const T_PING: TimerTag = TimerTag::new(0, 0, 0);

    impl Actor for PingPong {
        type Msg = Pp;
        fn on_start(&mut self, ctx: &mut Context<'_, Pp>) {
            ctx.set_timer(SimDuration::from_millis(1), T_PING);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Pp>, from: ProcessId, msg: Pp) {
            match msg {
                Pp::Ping => {
                    self.pings_seen += 1;
                    ctx.send(from, Pp::Pong);
                }
                Pp::Pong => {
                    self.pongs_seen += 1;
                    ctx.set_timer(SimDuration::from_millis(1), T_PING);
                }
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, Pp>, _tag: TimerTag) {
            let next = ctx.me().successor(ctx.n());
            ctx.send(next, Pp::Ping);
        }
    }

    pub(crate) fn two_node_world(seed: u64) -> World<PingPong> {
        let net = NetworkConfig::new(2)
            .with_default(LinkModel::reliable_const(SimDuration::from_millis(1)));
        WorldBuilder::new(net).seed(seed).build(|_, _| PingPong {
            pings_seen: 0,
            pongs_seen: 0,
        })
    }

    #[test]
    fn ping_pong_round_trips() {
        let mut w = two_node_world(1);
        w.run_until_time(Time::from_millis(100));
        assert!(w.actor(ProcessId(0)).pongs_seen > 10);
        assert!(w.actor(ProcessId(1)).pings_seen > 10);
        // Every pong answers a ping; at the cutoff a couple of pings may
        // still be in flight or unanswered.
        let pings = w.metrics().sent_of_kind("ping");
        let pongs = w.metrics().sent_of_kind("pong");
        assert!(
            pings >= pongs && pings - pongs <= 2,
            "pings={pings} pongs={pongs}"
        );
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let mut a = two_node_world(42);
        let mut b = two_node_world(42);
        a.run_until_time(Time::from_millis(50));
        b.run_until_time(Time::from_millis(50));
        assert_eq!(a.trace().events(), b.trace().events());
        assert_eq!(a.metrics().sent_total(), b.metrics().sent_total());
    }

    #[test]
    fn crash_stops_a_process() {
        let net = NetworkConfig::new(2)
            .with_default(LinkModel::reliable_const(SimDuration::from_millis(1)));
        let mut w = WorldBuilder::new(net)
            .crash_at(ProcessId(1), Time::from_millis(10))
            .build(|_, _| PingPong {
                pings_seen: 0,
                pongs_seen: 0,
            });
        w.run_until_time(Time::from_millis(100));
        assert!(w.is_crashed(ProcessId(1)));
        assert!(!w.is_crashed(ProcessId(0)));
        assert_eq!(w.correct(), vec![ProcessId(0)]);
        // p1 stopped answering, so p0 saw only the pongs from before the crash.
        let p0 = w.actor(ProcessId(0));
        assert!(p0.pongs_seen <= 12, "pongs after crash: {}", p0.pongs_seen);
        // Messages to the crashed process are recorded as drops.
        assert!(w.metrics().dropped_total() > 0);
    }

    #[test]
    fn run_until_predicate_stops_early() {
        let mut w = two_node_world(3);
        let hit = w.run_until(Time::from_secs(10), |w| {
            w.actor(ProcessId(1)).pings_seen >= 3
        });
        assert!(hit);
        assert!(w.now() < Time::from_secs(1));
        assert!(w.actor(ProcessId(1)).pings_seen >= 3);
    }

    #[test]
    fn run_until_deadline_when_predicate_never_holds() {
        let mut w = two_node_world(3);
        let hit = w.run_until(Time::from_millis(5), |_| false);
        assert!(!hit);
        assert_eq!(w.now(), Time::from_millis(5));
    }

    #[test]
    fn interact_injects_external_calls() {
        let mut w = two_node_world(4);
        w.interact(ProcessId(0), |_actor, ctx| ctx.send(ProcessId(1), Pp::Ping));
        w.run_until_time(Time::from_millis(3));
        assert!(w.actor(ProcessId(1)).pings_seen >= 1);
    }

    #[test]
    fn interact_with_crashed_process_is_ignored() {
        let net = NetworkConfig::new(2);
        let mut w = WorldBuilder::new(net)
            .crash_at(ProcessId(0), Time::ZERO)
            .build(|_, _| PingPong {
                pings_seen: 0,
                pongs_seen: 0,
            });
        w.run_until_time(Time::from_millis(1));
        let sent_before = w.metrics().sent_total();
        w.interact(ProcessId(0), |_a, ctx| ctx.send(ProcessId(1), Pp::Ping));
        assert_eq!(w.metrics().sent_total(), sent_before);
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        struct Cancelling {
            fired: bool,
        }
        #[derive(Clone, Debug)]
        struct Never;
        impl SimMessage for Never {}
        impl Actor for Cancelling {
            type Msg = Never;
            fn on_start(&mut self, ctx: &mut Context<'_, Never>) {
                let id = ctx.set_timer(SimDuration::from_millis(5), TimerTag::new(0, 0, 0));
                ctx.cancel_timer(id);
            }
            fn on_message(&mut self, _: &mut Context<'_, Never>, _: ProcessId, _: Never) {}
            fn on_timer(&mut self, _: &mut Context<'_, Never>, _: TimerTag) {
                self.fired = true;
            }
        }
        let mut w =
            WorldBuilder::new(NetworkConfig::new(1)).build(|_, _| Cancelling { fired: false });
        w.run_until_time(Time::from_millis(20));
        assert!(!w.actor(ProcessId(0)).fired);
    }

    #[test]
    #[should_panic(expected = "event budget exceeded")]
    fn event_budget_guards_zero_delay_loops() {
        struct Looper;
        #[derive(Clone, Debug)]
        struct Never;
        impl SimMessage for Never {}
        impl Actor for Looper {
            type Msg = Never;
            fn on_start(&mut self, ctx: &mut Context<'_, Never>) {
                ctx.set_timer(SimDuration::ZERO, TimerTag::new(0, 0, 0));
            }
            fn on_message(&mut self, _: &mut Context<'_, Never>, _: ProcessId, _: Never) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Never>, _: TimerTag) {
                ctx.set_timer(SimDuration::ZERO, TimerTag::new(0, 0, 0));
            }
        }
        let mut w = WorldBuilder::new(NetworkConfig::new(1))
            .max_events(1_000)
            .build(|_, _| Looper);
        w.run_until_time(Time::from_millis(1));
    }

    /// Determinism guard for the observability layer: an instrumented
    /// run must produce exactly the trace and counters of a bare run,
    /// while the registry fills with kernel telemetry on the side.
    #[test]
    fn observed_runs_are_byte_identical_to_bare_runs() {
        let registry = fd_obs::Registry::new();
        let net = NetworkConfig::new(2)
            .with_default(LinkModel::reliable_const(SimDuration::from_millis(1)));
        let mut observed = WorldBuilder::new(net)
            .seed(9)
            .observe(WorldObs::new(&registry))
            .build(|_, _| PingPong {
                pings_seen: 0,
                pongs_seen: 0,
            });
        let mut bare = two_node_world(9);
        observed.run_until_time(Time::from_millis(60));
        bare.run_until_time(Time::from_millis(60));
        assert_eq!(observed.trace().digest(), bare.trace().digest());
        assert_eq!(
            observed.metrics().events_processed(),
            bare.metrics().events_processed()
        );
        // The event count is batched per world and flushed when the
        // world (and its `WorldObs`) drops.
        drop(observed);
        let events = registry.counter(fd_obs::keys::SIM_EVENTS);
        assert_eq!(events.get(), bare.metrics().events_processed());
        assert!(registry.gauge(fd_obs::keys::SIM_QUEUE_DEPTH_HWM).get() >= 1);
        assert!(registry.histogram(fd_obs::keys::SIM_CALLBACK_NS).count() > 0);
    }

    /// The batched `run_until_time` loop must be indistinguishable from
    /// a one-event-at-a-time `step` loop: same trace bytes, same
    /// metrics, same final clock.
    #[test]
    fn batched_run_matches_step_loop() {
        let mut batched = two_node_world(17);
        let mut stepped = two_node_world(17);
        let until = Time::from_millis(80);
        batched.run_until_time(until);
        stepped.ensure_started();
        loop {
            match stepped.queue.peek_time() {
                Some(t) if t <= until => {
                    stepped.step();
                }
                _ => break,
            }
        }
        stepped.now = stepped.now.max(until);
        assert_eq!(batched.trace().digest(), stepped.trace().digest());
        assert_eq!(
            batched.metrics().events_processed(),
            stepped.metrics().events_processed()
        );
        assert_eq!(batched.now(), stepped.now());
    }

    /// `ObsOnly` keeps observations and crashes — everything the class
    /// checkers consume — while dropping the O(messages) stream.
    #[test]
    fn obs_only_trace_keeps_checker_events() {
        let net = NetworkConfig::new(2)
            .with_default(LinkModel::reliable_const(SimDuration::from_millis(1)));
        let mut w = WorldBuilder::new(net)
            .trace_mode(TraceMode::ObsOnly)
            .crash_at(ProcessId(1), Time::from_millis(10))
            .build(|_, _| PingPong {
                pings_seen: 0,
                pongs_seen: 0,
            });
        w.run_until_time(Time::from_millis(50));
        w.annotate("phase", Payload::U64(1));
        assert!(w.metrics().sent_total() > 0, "metrics stay on");
        let trace = w.trace();
        assert!(!trace.is_empty());
        assert_eq!(trace.crashes().len(), 1);
        assert_eq!(trace.observations("phase").count(), 1);
        for e in trace.events() {
            assert!(
                matches!(
                    e.kind,
                    TraceKind::Observation { .. } | TraceKind::Crashed { .. }
                ),
                "message-level event leaked into ObsOnly trace: {e:?}"
            );
        }
    }

    #[test]
    fn trace_can_be_disabled() {
        let mut w = {
            let net = NetworkConfig::new(2);
            WorldBuilder::new(net)
                .record_trace(false)
                .build(|_, _| PingPong {
                    pings_seen: 0,
                    pongs_seen: 0,
                })
        };
        w.run_until_time(Time::from_millis(50));
        assert!(w.trace().is_empty());
        assert!(w.metrics().sent_total() > 0, "metrics stay on");
    }
}

#[cfg(test)]
mod chaos_tests {
    use super::*;
    use crate::actor::TimerTag;
    use crate::link::{LinkMangler, LinkModel};
    use crate::time::SimDuration;

    /// Heartbeat-ish actor: every 2 ms each process sends `Beat` to its
    /// successor and counts what it receives. `on_start` re-arms the
    /// timer chain, so a warm restart resumes beating.
    struct Beater {
        seen: u64,
        starts: u64,
    }

    #[derive(Clone, Debug)]
    struct Beat;
    impl SimMessage for Beat {
        fn kind(&self) -> &'static str {
            "beat"
        }
    }

    const T_BEAT: TimerTag = TimerTag::new(0, 0, 0);

    impl Actor for Beater {
        type Msg = Beat;
        fn on_start(&mut self, ctx: &mut Context<'_, Beat>) {
            self.starts += 1;
            ctx.set_timer(SimDuration::from_millis(2), T_BEAT);
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, Beat>, _from: ProcessId, _m: Beat) {
            self.seen += 1;
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, Beat>, _tag: TimerTag) {
            let next = ctx.me().successor(ctx.n());
            ctx.send(next, Beat);
            ctx.set_timer(SimDuration::from_millis(2), T_BEAT);
        }
    }

    fn beat_world(seed: u64) -> World<Beater> {
        let net = NetworkConfig::new(2)
            .with_default(LinkModel::reliable_const(SimDuration::from_millis(1)));
        WorldBuilder::new(net)
            .seed(seed)
            .build(|_, _| Beater { seen: 0, starts: 0 })
    }

    fn cut_both() -> crate::chaos::Intervention {
        crate::chaos::Intervention {
            tag: crate::chaos::PARTITION,
            payload: Payload::pids([ProcessId(0), ProcessId(1)]),
            change: crate::chaos::NetChange::SetLinks(vec![
                (ProcessId(0), ProcessId(1), LinkModel::Dead),
                (ProcessId(1), ProcessId(0), LinkModel::Dead),
            ]),
        }
    }

    #[test]
    fn partition_cut_drops_and_heal_restores() {
        let mut w = beat_world(7);
        w.schedule_intervention(Time::from_millis(10), cut_both());
        let heal = crate::chaos::Intervention {
            tag: crate::chaos::HEAL,
            payload: Payload::pids([ProcessId(0), ProcessId(1)]),
            change: crate::chaos::NetChange::SetLinks(vec![
                (
                    ProcessId(0),
                    ProcessId(1),
                    LinkModel::reliable_const(SimDuration::from_millis(1)),
                ),
                (
                    ProcessId(1),
                    ProcessId(0),
                    LinkModel::reliable_const(SimDuration::from_millis(1)),
                ),
            ]),
        };
        w.schedule_intervention(Time::from_millis(30), heal);
        w.run_until_time(Time::from_millis(60));
        // During [10, 30) every beat is dropped at the link.
        let dropped = w.metrics().dropped_total();
        assert!(dropped >= 8, "cut window should drop ~10 beats: {dropped}");
        // After the heal, beats flow again: the last delivery is late.
        let last_delivery = w
            .trace()
            .events()
            .iter()
            .rev()
            .find(|e| matches!(e.kind, TraceKind::Delivered { .. }))
            .expect("deliveries resume")
            .at;
        assert!(last_delivery > Time::from_millis(30), "{last_delivery}");
        // The fault schedule is in the trace.
        assert_eq!(w.trace().observations(chaos::PARTITION).count(), 1);
        assert_eq!(w.trace().observations(chaos::HEAL).count(), 1);
    }

    #[test]
    fn interventions_replay_byte_identically() {
        let run = || {
            let mut w = beat_world(11);
            w.schedule_intervention(Time::from_millis(5), cut_both());
            w.schedule_intervention(
                Time::from_millis(12),
                crate::chaos::Intervention {
                    tag: crate::chaos::MANGLE,
                    payload: Payload::None,
                    change: crate::chaos::NetChange::SetMangler(Some(LinkMangler {
                        drop: 0.2,
                        duplicate: 0.3,
                        reorder: 0.4,
                        skew: SimDuration::from_millis(3),
                    })),
                },
            );
            w.run_until_time(Time::from_millis(80));
            w.trace().digest()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn restart_revives_a_crashed_process_without_stale_timers() {
        let mut w = beat_world(3);
        w.schedule_crash(ProcessId(1), Time::from_millis(10));
        w.schedule_intervention(
            Time::from_millis(30),
            crate::chaos::Intervention {
                tag: crate::chaos::RESTART,
                payload: Payload::Pid(ProcessId(1)),
                change: crate::chaos::NetChange::Restart(ProcessId(1)),
            },
        );
        w.run_until_time(Time::from_millis(60));
        assert!(!w.is_crashed(ProcessId(1)));
        assert_eq!(w.actor(ProcessId(1)).starts, 2, "on_start ran again");
        // p0 saw beats before the crash and after the restart, with a
        // silent gap in between; the beat cadence stays one per 2 ms
        // (stale pre-crash timers must not double the rate).
        let p1_sends = w.metrics().sent_by(ProcessId(1));
        // ~5 beats before the 10ms crash, ~15 after the 30ms restart.
        assert!(
            (15..=23).contains(&p1_sends),
            "epoch guard should keep the cadence: {p1_sends}"
        );
        assert_eq!(w.trace().observations(chaos::RESTART).count(), 1);
        // The Crashed event is still in the trace — restart-awareness is
        // the checkers' job, not the kernel's.
        assert_eq!(w.trace().crashes().len(), 1);
    }

    #[test]
    fn restart_of_a_live_process_is_a_noop() {
        let mut w = beat_world(4);
        w.schedule_intervention(
            Time::from_millis(10),
            crate::chaos::Intervention {
                tag: crate::chaos::RESTART,
                payload: Payload::Pid(ProcessId(0)),
                change: crate::chaos::NetChange::Restart(ProcessId(0)),
            },
        );
        w.run_until_time(Time::from_millis(30));
        assert_eq!(w.actor(ProcessId(0)).starts, 1, "no spurious re-start");
    }

    #[test]
    fn mangler_duplicates_and_drops_deterministically() {
        let run = |mangle: bool| {
            let mut w = beat_world(9);
            if mangle {
                w.schedule_intervention(
                    Time::ZERO,
                    crate::chaos::Intervention {
                        tag: crate::chaos::MANGLE,
                        payload: Payload::None,
                        change: crate::chaos::NetChange::SetMangler(Some(LinkMangler {
                            drop: 0.25,
                            duplicate: 0.25,
                            reorder: 0.25,
                            skew: SimDuration::from_millis(2),
                        })),
                    },
                );
            }
            w.run_until_time(Time::from_millis(100));
            w
        };
        let mangled = run(true);
        assert!(mangled.metrics().mangled_dropped_total() > 0);
        assert!(mangled.metrics().duplicated_total() > 0);
        assert!(mangled.metrics().reordered_total() > 0);
        // Duplicates surface as extra Delivered events: deliveries plus
        // drops exceed sends (exactly by duplicated minus the handful of
        // messages still in flight at the horizon).
        assert!(
            mangled.metrics().delivered_total() + mangled.metrics().dropped_total()
                > mangled.metrics().sent_total(),
            "delivered {} + dropped {} vs sent {}",
            mangled.metrics().delivered_total(),
            mangled.metrics().dropped_total(),
            mangled.metrics().sent_total(),
        );
        let baseline = run(false);
        assert_eq!(baseline.metrics().mangled_dropped_total(), 0);
        assert_ne!(baseline.trace().digest(), mangled.trace().digest());
    }

    #[test]
    fn unmangle_stops_the_perturbation() {
        let mut w = beat_world(13);
        w.schedule_intervention(
            Time::ZERO,
            crate::chaos::Intervention {
                tag: crate::chaos::MANGLE,
                payload: Payload::None,
                change: crate::chaos::NetChange::SetMangler(Some(LinkMangler {
                    drop: 0.5,
                    duplicate: 0.0,
                    reorder: 0.0,
                    skew: SimDuration(1),
                })),
            },
        );
        w.schedule_intervention(
            Time::from_millis(20),
            crate::chaos::Intervention {
                tag: crate::chaos::UNMANGLE,
                payload: Payload::None,
                change: crate::chaos::NetChange::SetMangler(None),
            },
        );
        w.run_until_time(Time::from_millis(40));
        let dropped_at_20 = w.metrics().mangled_dropped_total();
        assert!(dropped_at_20 > 0);
        w.run_until_time(Time::from_millis(100));
        assert_eq!(
            w.metrics().mangled_dropped_total(),
            dropped_at_20,
            "no mangled drops after the unmangle"
        );
    }

    #[test]
    fn reset_clears_chaos_state() {
        let net = || {
            NetworkConfig::new(2)
                .with_default(LinkModel::reliable_const(SimDuration::from_millis(1)))
        };
        let mut w = beat_world(21);
        w.schedule_intervention(
            Time::ZERO,
            crate::chaos::Intervention {
                tag: crate::chaos::MANGLE,
                payload: Payload::None,
                change: crate::chaos::NetChange::SetMangler(Some(LinkMangler {
                    drop: 0.9,
                    duplicate: 0.0,
                    reorder: 0.0,
                    skew: SimDuration(1),
                })),
            },
        );
        w.run_until_time(Time::from_millis(30));
        assert!(w.metrics().mangled_dropped_total() > 0);
        w.take_results();
        w.reset(net(), 21, |_, _| Beater { seen: 0, starts: 0 });
        w.run_until_time(Time::from_millis(30));
        assert_eq!(
            w.metrics().mangled_dropped_total(),
            0,
            "reset must uninstall the mangler"
        );
        // And the reset run matches a fresh unmangled world byte for byte.
        let mut fresh = beat_world(21);
        fresh.run_until_time(Time::from_millis(30));
        assert_eq!(w.trace().digest(), fresh.trace().digest());
    }

    /// The partitions gauge tracks the high-water mark of open cuts.
    #[test]
    fn partition_gauge_records_high_water_mark() {
        let registry = fd_obs::Registry::new();
        let net = NetworkConfig::new(3)
            .with_default(LinkModel::reliable_const(SimDuration::from_millis(1)));
        let mut w = WorldBuilder::new(net)
            .observe(WorldObs::new(&registry))
            .build(|_, _| Beater { seen: 0, starts: 0 });
        for (at, tag) in [
            (5, chaos::PARTITION),
            (10, chaos::PARTITION),
            (15, chaos::HEAL),
            (20, chaos::HEAL),
        ] {
            w.schedule_intervention(
                Time::from_millis(at),
                Intervention::annotate(tag, Payload::None),
            );
        }
        w.run_until_time(Time::from_millis(30));
        assert_eq!(
            registry.gauge(fd_obs::keys::CHAOS_PARTITIONS_ACTIVE).get(),
            2
        );
    }
}

#[cfg(test)]
mod sched_tests {
    use super::tests::{two_node_world, Pp};
    use super::*;
    use crate::actor::TimerTag;
    use crate::link::LinkModel;
    use crate::sched::CanonicalScheduler;
    use crate::time::SimDuration;

    /// Replays a fixed prefix of choices, then falls back to canonical.
    struct Script {
        choices: Vec<SchedChoice>,
        next: usize,
    }

    impl Script {
        fn new(choices: Vec<SchedChoice>) -> Script {
            Script { choices, next: 0 }
        }
    }

    impl Scheduler for Script {
        fn choose(&mut self, _cp: &ChoicePoint<'_>) -> SchedChoice {
            let c = self
                .choices
                .get(self.next)
                .copied()
                .unwrap_or(SchedChoice::Event(0));
            self.next += 1;
            c
        }
    }

    /// The canonical scheduler must reproduce `run_until_time` byte for
    /// byte — trace digest, metrics, and final clock. This is the
    /// "branch zero is the canonical schedule" anchor of DESIGN.md §3.1.
    #[test]
    fn canonical_scheduler_matches_run_until_time() {
        let until = Time::from_millis(80);
        let mut plain = two_node_world(17);
        plain.run_until_time(until);
        let mut scheduled = two_node_world(17);
        scheduled.run_scheduled_until(until, &mut CanonicalScheduler);
        assert_eq!(plain.trace().digest(), scheduled.trace().digest());
        assert_eq!(
            plain.metrics().events_processed(),
            scheduled.metrics().events_processed()
        );
        assert_eq!(plain.now(), scheduled.now());
    }

    /// State tracking must not perturb the run: a tracked canonical run
    /// has the same trace as an untracked one.
    #[test]
    fn state_tracking_does_not_change_the_run() {
        let net = NetworkConfig::new(2)
            .with_default(LinkModel::reliable_const(SimDuration::from_millis(1)));
        let mut tracked = WorldBuilder::new(net)
            .seed(17)
            .track_state(true)
            .build(|_, _| super::tests::PingPong {
                pings_seen: 0,
                pongs_seen: 0,
            });
        tracked.run_scheduled_until(Time::from_millis(80), &mut CanonicalScheduler);
        let mut plain = two_node_world(17);
        plain.run_until_time(Time::from_millis(80));
        assert_eq!(tracked.trace().digest(), plain.trace().digest());
    }

    /// Drops the first enabled delivery it sees, then runs canonically.
    struct DropFirstDeliver {
        dropped: bool,
    }

    impl Scheduler for DropFirstDeliver {
        fn choose(&mut self, cp: &ChoicePoint<'_>) -> SchedChoice {
            if !self.dropped {
                if let Some(i) = cp.enabled.iter().position(EnabledEvent::is_deliver) {
                    self.dropped = true;
                    return SchedChoice::Drop(i);
                }
            }
            SchedChoice::Event(0)
        }
    }

    /// A forced drop behaves exactly like a link loss: the receiver
    /// never dispatches, the trace records a `Link` drop, metrics count
    /// it.
    #[test]
    fn drop_choice_is_a_link_loss() {
        let mut w = two_node_world(5);
        let mut sched = DropFirstDeliver { dropped: false };
        w.run_scheduled_until(Time::from_millis(10), &mut sched);
        assert!(sched.dropped, "a delivery was enabled and dropped");
        assert!(w.metrics().dropped_total() >= 1);
        let forced = w
            .trace()
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    TraceKind::Dropped {
                        reason: DropReason::Link,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(forced, 1, "exactly one forced drop in the trace");
        // The canonical run delivers strictly more: the dropped ping
        // never arrives, and the reply chain it would have fed dies too.
        let mut canonical = two_node_world(5);
        canonical.run_until_time(Time::from_millis(10));
        assert!(
            canonical.metrics().delivered_total() > w.metrics().delivered_total(),
            "canonical {} vs dropped {}",
            canonical.metrics().delivered_total(),
            w.metrics().delivered_total()
        );
    }

    /// p0 sends one message to each other process on start; everyone
    /// else stays quiet. Gives one same-instant batch of two
    /// independent deliveries (targets p1, p2) to reorder.
    struct Fan;

    impl Actor for Fan {
        type Msg = Pp;
        fn on_start(&mut self, ctx: &mut Context<'_, Pp>) {
            if ctx.me() == ProcessId(0) {
                ctx.send(ProcessId(1), Pp::Ping);
                ctx.send(ProcessId(2), Pp::Ping);
            }
        }
        fn on_message(&mut self, _: &mut Context<'_, Pp>, _: ProcessId, _: Pp) {}
        fn on_timer(&mut self, _: &mut Context<'_, Pp>, _: TimerTag) {}
    }

    fn fan_world() -> World<Fan> {
        let net = NetworkConfig::new(3)
            .with_default(LinkModel::reliable_const(SimDuration::from_millis(1)));
        WorldBuilder::new(net).track_state(true).build(|_, _| Fan)
    }

    /// Equivalent interleavings — same per-process dispatch orders,
    /// different cross-process order — converge to the same state
    /// digest even though their traces differ. This is the property the
    /// model checker's visited set stands on.
    #[test]
    fn equivalent_interleavings_share_a_state_digest() {
        let until = Time::from_millis(5);
        let mut a = fan_world();
        a.run_scheduled_until(until, &mut Script::new(vec![SchedChoice::Event(0)]));
        let mut b = fan_world();
        b.run_scheduled_until(until, &mut Script::new(vec![SchedChoice::Event(1)]));
        assert_ne!(
            a.trace().digest(),
            b.trace().digest(),
            "the two delivery orders are distinct schedules"
        );
        assert_eq!(
            a.state_digest(),
            b.state_digest(),
            "commuting deliveries must converge"
        );
        // A run that dropped a delivery is NOT equivalent.
        let mut c = fan_world();
        c.run_scheduled_until(until, &mut Script::new(vec![SchedChoice::Drop(0)]));
        assert_ne!(a.state_digest(), c.state_digest());
    }

    /// The digest machinery must be deterministic across identically
    /// scheduled runs (the replay guarantee fd-mc's witnesses rely on).
    #[test]
    fn scheduled_replays_are_byte_identical() {
        let run = |choices: Vec<SchedChoice>| {
            let mut w = fan_world();
            w.run_scheduled_until(Time::from_millis(5), &mut Script::new(choices));
            (w.trace().digest(), w.state_digest())
        };
        let script = vec![SchedChoice::Event(1), SchedChoice::Drop(0)];
        assert_eq!(run(script.clone()), run(script));
    }

    /// Tracked worlds refuse to run over RNG-consuming networks — the
    /// shared net-RNG stream would make digests schedule-dependent.
    #[test]
    #[should_panic(expected = "state tracking requires an RNG-free network")]
    fn tracked_worlds_reject_random_networks() {
        let net = NetworkConfig::new(2).with_default(LinkModel::reliable_uniform(
            SimDuration::from_millis(1),
            SimDuration::from_millis(4),
        ));
        let mut w = WorldBuilder::new(net).track_state(true).build(|_, _| Fan);
        w.run_scheduled_until(Time::from_millis(5), &mut CanonicalScheduler);
    }
}

#[cfg(test)]
mod annotate_tests {
    use super::*;
    use crate::actor::{SimMessage, TimerTag};
    use crate::trace::Payload;

    struct Quiet;
    #[derive(Clone, Debug)]
    struct Never;
    impl SimMessage for Never {}
    impl Actor for Quiet {
        type Msg = Never;
        fn on_start(&mut self, _: &mut Context<'_, Never>) {}
        fn on_message(&mut self, _: &mut Context<'_, Never>, _: ProcessId, _: Never) {}
        fn on_timer(&mut self, _: &mut Context<'_, Never>, _: TimerTag) {}
    }

    #[test]
    fn harness_annotations_land_in_the_trace() {
        let mut w = WorldBuilder::new(crate::topology::NetworkConfig::new(1)).build(|_, _| Quiet);
        w.run_until_time(Time::from_millis(10));
        w.annotate("scenario.phase", Payload::U64(2));
        let (trace, _) = w.into_results();
        let (at, _, payload) = trace
            .observations("scenario.phase")
            .next()
            .expect("annotated");
        assert_eq!(at, Time::from_millis(10));
        assert_eq!(payload.as_u64(), Some(2));
    }

    #[test]
    fn annotations_respect_trace_switch() {
        let mut w = WorldBuilder::new(crate::topology::NetworkConfig::new(1))
            .record_trace(false)
            .build(|_, _| Quiet);
        w.annotate("x", Payload::None);
        let (trace, _) = w.into_results();
        assert!(trace.is_empty());
    }
}
