//! Eventual leader election (the Ω half of ◇C) under a sequence of
//! leader crashes.
//!
//! ```bash
//! cargo run --example leader_election
//! ```
//!
//! Runs the candidate-based detector of \[16\] (`n−1` messages per period):
//! leadership starts at p0, and every time the leader crashes the ring of
//! candidates moves to the next correct process. The timeline printed is
//! each process's `trusted` output over time.

use ecfd::prelude::*;
use fd_core::obs;

fn main() {
    let n = 5;
    let net = default_net(n);
    let mut world = WorldBuilder::new(net)
        .seed(7)
        .crash_at(ProcessId(0), Time::from_millis(300))
        .crash_at(ProcessId(1), Time::from_millis(700))
        .build(|pid, n| fd_core::Standalone(LeaderDetector::new(pid, n, LeaderConfig::default())));

    let end = Time::from_millis(1200);
    world.run_until_time(end);
    let (trace, metrics) = world.into_results();

    println!("leadership timeline (p0 crashes @300ms, p1 @700ms):\n");
    for i in 0..n {
        let pid = ProcessId(i);
        let history: Vec<String> = trace
            .observations_of(pid, obs::TRUSTED)
            .map(|(at, pl)| format!("{}ms→{}", at.as_millis(), pl.as_pid().unwrap()))
            .collect();
        println!("  p{i}: {}", history.join("  "));
    }

    println!("\nchronological view (fd_sim::Timeline):");
    print!(
        "{}",
        fd_sim::Timeline::new(&trace)
            .only_tags(&[obs::TRUSTED])
            .render()
    );

    let run = FdRun::new(&trace, n, end);
    run.check_class(FdClass::Omega)
        .expect("Property 1 (Ω) holds");
    run.check_class(FdClass::EventuallyConsistent)
        .expect("Definition 1 (◇C) holds");
    println!("\nΩ property verified: all correct processes trust p2 permanently ✓");
    println!(
        "total leader.alive messages in 1.2s: {} (steady state ≈ (n−1) per 10ms period)",
        metrics.sent_of_kind("leader.alive")
    );
}
