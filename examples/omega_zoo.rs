//! The Ω zoo: every leader-election construction in the workspace, side
//! by side on the same scenario.
//!
//! ```bash
//! cargo run --example omega_zoo
//! ```
//!
//! Scenario: n = 6, p0 crashes at 300 ms, p1 at 700 ms — leadership must
//! end up at p2 under every construction. The table contrasts what each
//! costs (periodic messages) and what it gives back (suspect-set
//! accuracy, §3's trade-off).

use ecfd::prelude::*;
use fd_core::Standalone;
use fd_detectors::{
    FusedConfig, FusedDetector, HeartbeatDetector, OmegaGossip, OmegaGossipConfig, OmegaGossipNode,
    RingDetector, StableLeaderConfig, StableLeaderDetector,
};
use fd_sim::Trace;

fn scenario_world<A: fd_sim::Actor>(
    make: impl FnMut(ProcessId, usize) -> A,
) -> (Trace, fd_sim::Metrics, Time) {
    let n = 6;
    let mut w = WorldBuilder::new(default_net(n))
        .seed(0x200)
        .crash_at(ProcessId(0), Time::from_millis(300))
        .crash_at(ProcessId(1), Time::from_millis(700))
        .build(make);
    let end = Time::from_secs(5);
    w.run_until_time(end);
    let (trace, metrics) = w.into_results();
    (trace, metrics, end)
}

fn report(name: &str, trace: &Trace, metrics: &fd_sim::Metrics, end: Time) {
    let n = 6;
    let run = FdRun::new(trace, n, end);
    run.check_class(FdClass::Omega).expect("Property 1");
    let leader = run.final_trusted(ProcessId(2)).unwrap();
    let mean_suspects: f64 = run
        .correct()
        .iter()
        .map(|p| run.final_suspects(p).len() as f64)
        .sum::<f64>()
        / run.correct().len() as f64;
    println!(
        "  {name:<28} leader={leader}  mean|suspected|={mean_suspects:.1}  total msgs in 5s={}",
        metrics.sent_total(),
    );
}

fn main() {
    println!("Ω constructions on one scenario (n=6; p0 crashes @300ms, p1 @700ms):\n");

    let (t, m, end) =
        scenario_world(|pid, n| Standalone(LeaderDetector::new(pid, n, LeaderConfig::default())));
    report("candidate [16]", &t, &m, end);

    let (t, m, end) = scenario_world(|pid, n| {
        Standalone(StableLeaderDetector::new(
            pid,
            n,
            StableLeaderConfig::default(),
        ))
    });
    report("stable punish-ranked [2]", &t, &m, end);

    let (t, m, end) = scenario_world(|pid, n| {
        Standalone(LeaderByFirstNonSuspected::new(
            HeartbeatDetector::new(pid, n, HeartbeatConfig::default()),
            n,
        ))
    });
    report("first-unsuspected on ◇P", &t, &m, end);

    let (t, m, end) = scenario_world(|pid, n| {
        Standalone(LeaderByFirstNonSuspected::new(
            RingDetector::new(pid, n, RingConfig::default()),
            n,
        ))
    });
    report("first-unsuspected on ring ◇S", &t, &m, end);

    let (t, m, end) =
        scenario_world(|pid, n| Standalone(FusedDetector::new(pid, n, FusedConfig::default())));
    report("fused ◇C+◇P (§4)", &t, &m, end);

    let (t, m, end) = scenario_world(|pid, n| {
        OmegaGossipNode::new(
            HeartbeatDetector::new(pid, n, HeartbeatConfig::default()),
            OmegaGossip::new(pid, n, OmegaGossipConfig::default()),
        )
    });
    report("counter-gossip [5,7] on ◇P", &t, &m, end);

    println!("\nall constructions satisfy Property 1 (Ω) and agree on p2 ✓");
    println!("the spread in message totals and suspect-set sizes is §3's trade-off:");
    println!("cheap leadership (candidate: n−1/period, 5 suspects) vs. accurate");
    println!("suspect sets (heartbeat/ring bases: exactly the crashed processes).");
}
