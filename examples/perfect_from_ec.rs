//! The Fig. 2 transformation, live: build an eventually perfect (◇P)
//! failure detector out of a ◇C detector in a partially synchronous
//! system — with fair-lossy links out of the leader.
//!
//! ```bash
//! cargo run --example perfect_from_ec
//! ```

use ecfd::prelude::*;
use fd_detectors::ec_to_ep::{EcToEp, EcToEpConfig, EcToEpNode};

fn main() {
    let n = 5;
    let leader = ProcessId(0);
    let gst = Time::from_millis(150);

    // The paper's link requirements: eventually timely *into* the leader,
    // fair-lossy (30% loss!) *out of* the leader.
    let net = NetworkConfig::new(n)
        .with_default(LinkModel::reliable_uniform(
            SimDuration::from_millis(1),
            SimDuration::from_millis(4),
        ))
        .with_links_into(
            leader,
            LinkModel::eventually_timely(
                gst,
                SimDuration::from_millis(5),
                SimDuration::from_millis(100),
                0.3,
            ),
        )
        .with_links_out_of(
            leader,
            LinkModel::fair_lossy(
                SimDuration::from_millis(1),
                SimDuration::from_millis(4),
                0.3,
            ),
        );

    let mut world = WorldBuilder::new(net)
        .seed(3)
        .crash_at(ProcessId(2), Time::from_millis(500))
        .crash_at(ProcessId(4), Time::from_millis(900))
        .build(|pid, n| {
            EcToEpNode::new(
                LeaderDetector::new(pid, n, LeaderConfig::default()),
                EcToEp::new(pid, n, EcToEpConfig::default()),
            )
        });

    let end = Time::from_secs(6);
    world.run_until_time(end);

    println!("Fig. 2 stack: [16]-leader ◇C + transformation, GST = {gst}, 30% output loss");
    println!("p2 crashes @500ms, p4 @900ms\n");
    let mistakes = world.actor(leader).ep.mistakes();
    let (trace, metrics) = world.into_results();

    let run = FdRun::new(&trace, n, end).with_suspects_tag(EP_SUSPECTS_OUT);
    for i in [0usize, 1, 3] {
        println!(
            "  p{i} final ◇P suspect list: {}",
            run.final_suspects(ProcessId(i))
        );
    }
    run.check_class(FdClass::EventuallyPerfect)
        .expect("Theorem 1: the output is ◇P");
    println!("\nstrong completeness + eventual strong accuracy verified ✓");
    println!("leader's Task-4 timeout increases (mistakes): {mistakes} — finite, as proved");
    println!(
        "periodic cost: {} I-AM-ALIVE + {} list messages over 6s (≈2(n−1)/period)",
        metrics.sent_of_kind("ep.alive"),
        metrics.sent_of_kind("ep.suspects"),
    );
}
