//! The §5.4 comparison, live: run the paper's ◇C consensus, the
//! Chandra–Toueg ◇S baseline, and the Mostefaoui–Raynal Ω baseline on
//! the same scenario and print rounds, messages, and latency.
//!
//! ```bash
//! cargo run --example protocol_comparison
//! ```
//!
//! The scenario stresses the rotating-coordinator weakness: the detector
//! is stable from the start with p3 as the (never-suspected) leader, so
//! CT must rotate through rounds 1–3 before its coordinator is trusted,
//! while the leader-based protocols decide in round 1 (Theorem 3).

use ecfd::prelude::*;
use fd_consensus::{CtConsensus, MrConsensus, PaxosConsensus};

fn main() {
    let n = 5;
    let leader = ProcessId(3);
    let sc = Scenario::failure_free(n, 9, Time::from_secs(10));

    println!("n = {n}; detector stable from t=0: everyone trusts {leader}, suspects the rest\n");
    println!(
        "{:<12} {:>9} {:>14} {:>12} {:>16}",
        "protocol", "decided", "decision round", "time (ms)", "protocol msgs"
    );

    let mk_fd = move |_pid: ProcessId, n: usize| {
        ScriptedDetector::stable(leader, ProcessSet::singleton(leader).complement(n))
    };

    let ec = run_scenario(default_net(n), &sc, |pid, n| {
        scripted_node(
            pid,
            mk_fd(pid, n),
            EcConsensus::new(pid, n, ConsensusConfig::default()),
        )
    });
    report("◇C (paper)", &ec, "ec.");

    let ct = run_scenario(default_net(n), &sc, |pid, n| {
        scripted_node(
            pid,
            mk_fd(pid, n),
            CtConsensus::new(pid, n, ConsensusConfig::default()),
        )
    });
    report("CT ◇S", &ct, "ct.");

    let mr = run_scenario(default_net(n), &sc, |pid, n| {
        scripted_node(
            pid,
            mk_fd(pid, n),
            MrConsensus::with_unknown_f(pid, n, ConsensusConfig::default()),
        )
    });
    report("MR Ω", &mr, "mr.");

    let paxos = run_scenario(default_net(n), &sc, |pid, n| {
        scripted_node(
            pid,
            mk_fd(pid, n),
            PaxosConsensus::new(pid, n, ConsensusConfig::default()),
        )
    });
    report("Paxos [13]", &paxos, "paxos.");

    println!("\nthe ◇C algorithm decides in the first round its leader coordinates;");
    println!("CT pays extra rounds for the rotation (Theorem 3), MR pays n² messages;");
    println!("Paxos (one uncontested ballot — its 'round' is the ballot number) matches");
    println!("◇C's latency: prepare/promise is Phase 0/1 by another name (§1.2).");
}

fn report(label: &str, r: &RunResult, prefix: &str) {
    ConsensusRun::new(&r.trace, r.n)
        .check_all()
        .expect("uniform consensus");
    println!(
        "{:<12} {:>9} {:>14} {:>12} {:>16}",
        label,
        r.decided_value(),
        r.max_decision_round().unwrap(),
        r.decide_time.unwrap().as_millis(),
        r.messages_with_prefix(prefix),
    );
}
