//! Quickstart: five processes agree on a value while one of them crashes.
//!
//! ```bash
//! cargo run --example quickstart
//! ```
//!
//! The stack is the paper's: every process runs a ◇C failure detector
//! (here: heartbeat-based, so suspect sets are accurate), a Reliable
//! Broadcast module, and the ◇C consensus algorithm of Figs. 3–4.

use ecfd::prelude::*;

fn main() {
    let n = 5;
    // Reliable links with 1–4 ms jitter.
    let net = default_net(n);

    // Process 3 crashes 25 ms into the run — while consensus is running.
    let scenario = Scenario {
        seed: 42,
        crashes: vec![(ProcessId(3), Time::from_millis(25))],
        proposals: vec![700, 701, 702, 703, 704],
        horizon: Time::from_secs(10),
    };

    println!(
        "n = {n}, proposals = {:?}, p3 crashes at 25ms",
        scenario.proposals
    );
    let result = run_scenario(net, &scenario, ec_node_hb);

    assert!(
        result.all_decided,
        "consensus must terminate with f = 1 < n/2"
    );
    println!(
        "\nall correct processes decided by {}",
        result.decide_time.unwrap()
    );
    for (i, d) in result.decisions.iter().enumerate() {
        match d {
            Some((value, round)) => println!("  p{i}: decided {value} in round {round}"),
            None => println!("  p{i}: crashed before deciding"),
        }
    }

    // Check the §5.1 Uniform Consensus properties on the recorded trace.
    let check = ConsensusRun::new(&result.trace, n);
    check
        .check_all()
        .expect("uniform agreement, validity, integrity, termination");
    println!("\nuniform agreement + validity + integrity + termination: verified ✓");
    println!(
        "protocol messages: {} (plus {} decision-broadcast messages)",
        result.messages_with_prefix("ec."),
        result.metrics.sent_of_kind("rb.msg"),
    );
}
