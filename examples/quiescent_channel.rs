//! Quiescent reliable communication with the timeout-free Heartbeat
//! detector of Aguilera, Chen & Toueg \[1\] (cited in §1.1).
//!
//! ```bash
//! cargo run --example quiescent_channel
//! ```
//!
//! Every link loses 60% of its messages. p0 reliably sends to a correct
//! process (p1) and to a crashed one (p2). Retransmissions are driven
//! purely by heartbeat-counter evidence — no timeouts anywhere:
//! the correct destination is reached, and the crashed destination's
//! stream goes silent instead of retrying forever.

use ecfd::prelude::*;
use fd_detectors::{HbCounterConfig, QuiescentNode};

fn main() {
    let n = 3;
    let net = NetworkConfig::new(n).with_default(LinkModel::fair_lossy(
        SimDuration::from_millis(1),
        SimDuration::from_millis(4),
        0.6,
    ));
    let mut world = WorldBuilder::new(net)
        .seed(21)
        .crash_at(ProcessId(2), Time::ZERO)
        .build(|_, n| QuiescentNode::new(n, HbCounterConfig::default()));

    println!("60% loss on every link; p2 is crashed from the start\n");
    world.interact(ProcessId(0), |node, ctx| {
        node.send(ctx, ProcessId(1), 1111);
        node.send(ctx, ProcessId(2), 2222);
    });

    for checkpoint_s in [2u64, 5, 10] {
        world.run_until_time(Time::from_secs(checkpoint_s));
        let p0 = world.actor(ProcessId(0));
        println!(
            "t={checkpoint_s}s: tx→p1(correct)={}, tx→p2(crashed)={}, unacked={}",
            p0.qc.transmissions(ProcessId(1), 0),
            p0.qc.transmissions(ProcessId(2), 1),
            p0.qc.pending_len(),
        );
    }

    let p0 = world.actor(ProcessId(0));
    assert_eq!(
        p0.qc.pending_len(),
        1,
        "only the message to the crashed p2 stays unacked"
    );
    println!("\nthe message to p1 was delivered despite the loss;");
    println!("the stream to p2 froze when its heartbeat counter stopped — quiescence ✓");
    println!("(a timeout-based retransmitter must choose: retry forever, or risk giving up");
    println!(" on a slow-but-correct receiver; heartbeat evidence avoids the dilemma)");
}
