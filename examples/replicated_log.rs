//! A live replicated command log (state-machine replication) — the
//! application that motivates consensus in the paper's introduction.
//!
//! ```bash
//! cargo run --example replicated_log
//! ```
//!
//! Five replicas run continuously in one world. Each replica hosts a ◇C
//! failure detector, a Reliable Broadcast module, and a *multiplexer* of
//! ◇C-consensus instances — one per log slot. Clients submit commands at
//! different replicas concurrently; every slot is decided by Uniform
//! Consensus, losing commands are re-queued, and replicas crash along the
//! way. All correct replicas end up applying the identical sequence.

use ecfd::prelude::*;
use fd_consensus::{ConsensusNode, MultiEc, MultiNode, NOOP};
use fd_detectors::HeartbeatDetector;

type Replica = MultiNode<LeaderByFirstNonSuspected<HeartbeatDetector>>;

fn replica(pid: ProcessId, n: usize) -> Replica {
    MultiNode::new(
        pid,
        LeaderByFirstNonSuspected::new(
            HeartbeatDetector::new(pid, n, HeartbeatConfig::default()),
            n,
        ),
        MultiEc::new(pid, n, ConsensusConfig::default()),
    )
}

fn main() {
    let n = 5;
    let mut world = WorldBuilder::new(default_net(n)).seed(7).build(replica);

    // Clients submit 3 commands at each replica, concurrently. Command
    // encoding: replica*100 + k (0 is reserved for NOOP).
    let mut all_commands = Vec::new();
    for i in 0..n {
        for k in 0..3u64 {
            let cmd = (i as u64 + 1) * 100 + k;
            all_commands.push(cmd);
            world.interact(ProcessId(i), move |node, ctx| node.submit(ctx, cmd));
        }
    }
    println!(
        "{} replicas, {} concurrent client commands",
        n,
        all_commands.len()
    );

    // Two replicas die while the log is being built.
    world.schedule_crash(ProcessId(4), Time::from_millis(40));
    world.schedule_crash(ProcessId(3), Time::from_millis(120));
    println!("p4 crashes @40ms, p3 @120ms (their unproposed commands are lost)\n");

    // Run until the survivors' logs contain every command the *surviving*
    // replicas submitted (crashed replicas' commands may be lost).
    let survivor_cmds: Vec<u64> = all_commands
        .iter()
        .copied()
        .filter(|c| c / 100 <= 3)
        .collect();
    let done = world.run_until(Time::from_secs(60), |w| {
        (0..3).all(|i| {
            let vals: Vec<u64> = w
                .actor(ProcessId(i))
                .log()
                .iter()
                .map(|(_, v)| *v)
                .collect();
            survivor_cmds.iter().all(|c| vals.contains(c))
        })
    });
    assert!(done, "log did not converge");

    let reference = world.actor(ProcessId(0)).log();
    println!(
        "replicated log at p0 ({} slots, decided in {}):",
        reference.len(),
        world.now()
    );
    for (slot, v) in &reference {
        if *v == NOOP {
            println!("  [{slot}] (noop)");
        } else {
            println!("  [{slot}] op{} from replica {}", v % 100, v / 100 - 1);
        }
    }

    // Agreement: every survivor's log is a prefix-consistent copy.
    for i in 1..3 {
        let log = world.actor(ProcessId(i)).log();
        let common = reference.len().min(log.len());
        assert_eq!(&log[..common], &reference[..common], "replica {i} diverged");
    }
    println!("\nall correct replicas hold identical logs — state-machine replication ✓");
    println!(
        "(messages: {} consensus, {} decision broadcasts, {} detector)",
        [
            "ec.coordinator",
            "ec.estimate",
            "ec.proposition",
            "ec.ack",
            "ec.nack",
            "multi.open"
        ]
        .iter()
        .map(|k| world.metrics().sent_of_kind(k))
        .sum::<u64>(),
        world.metrics().sent_of_kind("rb.msg"),
        world.metrics().sent_of_kind("hb.alive"),
    );
}

// Silence an unused-import warning: ConsensusNode is re-exported for
// users who want single-shot nodes alongside the multiplexer.
#[allow(dead_code)]
type _SingleShot = ConsensusNode<LeaderByFirstNonSuspected<HeartbeatDetector>, EcConsensus>;
