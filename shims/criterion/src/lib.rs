//! Offline subset of `criterion`.
//!
//! Keeps the workspace's `harness = false` benches compiling and running
//! without registry access. Measurement is deliberately simple — a short
//! warm-up, then a fixed measurement window, reporting the median
//! per-iteration time — with none of criterion's statistics, plots, or
//! baselines. Bench *identifiers and structure* match the real crate, so
//! swapping the registry version back in needs no source changes.

#![forbid(unsafe_code)]
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim runs one setup per
/// routine call regardless; the variants exist for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: many per batch under real criterion.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to every benchmark closure; runs the measured routine.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

const WARMUP_ITERS: u64 = 3;
const MEASURE_WINDOW: Duration = Duration::from_millis(200);
const MAX_ITERS: u64 = 1_000;

impl Bencher {
    fn new() -> Bencher {
        Bencher {
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Measure a routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        while start.elapsed() < MEASURE_WINDOW && self.iters < MAX_ITERS {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Measure a routine with per-iteration setup excluded from timing.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine(setup()));
        }
        let start = Instant::now();
        while start.elapsed() < MEASURE_WINDOW && self.iters < MAX_ITERS {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("{id:<60} (no iterations)");
            return;
        }
        let per_iter = self.total / self.iters as u32;
        let mut line = format!("{id:<60} {per_iter:>12.2?}/iter  ({} iters)", self.iters);
        if let Some(tp) = throughput {
            let secs = per_iter.as_secs_f64();
            if secs > 0.0 {
                let (count, unit) = match tp {
                    Throughput::Elements(n) => (n, "elem"),
                    Throughput::Bytes(n) => (n, "B"),
                };
                line += &format!("  {:.0} {unit}/s", count as f64 / secs);
            }
        }
        println!("{line}");
    }
}

/// A named group of benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.into()), self.throughput);
        self
    }

    /// Finish the group (matches criterion's API; nothing to flush here).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&id.into(), None);
        self
    }
}

/// Bundle benchmark functions into a named runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more `criterion_group!` runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(1));
        g.bench_function("iter", |b| b.iter(|| 1u64 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
