//! Offline subset of `crossbeam`: just the `channel` module, backed by
//! `std::sync::mpsc`. The workspace uses channels in their MPSC form
//! (cloned senders, a single receiver per endpoint), which std covers;
//! the crossbeam niceties (select!, MPMC receivers) are not needed.

#![forbid(unsafe_code)]
/// Multi-producer channels with the crossbeam constructor names.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, RecvTimeoutError, SendError, Sender};

    /// A channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn unbounded_round_trip() {
        let (tx, rx) = channel::unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(50)).unwrap(), 2);
        drop((tx, tx2));
        assert!(rx.recv().is_err());
    }
}
