//! Offline subset of `parking_lot`: a `Mutex` with the poison-free
//! `lock()` signature, backed by `std::sync::Mutex`. A poisoned std lock
//! is recovered rather than propagated — parking_lot has no poisoning,
//! so that matches the API contract callers rely on.

#![forbid(unsafe_code)]
use std::sync::MutexGuard;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
