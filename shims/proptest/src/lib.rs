//! Offline subset of `proptest`.
//!
//! Provides the surface the workspace's property tests use: the
//! `proptest!` macro with `#![proptest_config(...)]` and `pat in strategy`
//! bindings, `Strategy` with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, `any::<T>()`, `prop::collection::vec`, `prop::option::of`,
//! and the `prop_assert*` macros. Cases are generated deterministically
//! (seeded from the test name and case index) so failures reproduce;
//! unlike real proptest there is no shrinking — the failing inputs are
//! printed instead, and the workspace's own `fd-campaign` crate owns
//! scenario shrinking.

#![forbid(unsafe_code)]
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The input was rejected (not counted as a failure).
    Reject(String),
}

impl TestCaseError {
    /// A failed case.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (skipped) case.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// The deterministic generator handed to strategies.
pub type TestRng = SmallRng;

/// Derive the RNG for one test case. Public for the `proptest!` expansion.
#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SmallRng::seed_from_u64(h.wrapping_add(0x9e37_79b9 * case as u64))
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then a dependent strategy from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.gen()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.gen()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Combinator modules under the `prop::` path.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Inclusive length bounds for generated collections.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi: n }
            }
        }

        /// Strategy for `Vec<T>` with lengths drawn from a [`SizeRange`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `vec(element, size)`: a vector of `element` draws.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.lo..=self.size.hi);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy yielding `None` or `Some(inner)`.
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `of(inner)`: `Some` with probability ½, else `None`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.gen_bool(0.5) {
                    Some(self.inner.sample(rng))
                } else {
                    None
                }
            }
        }
    }
}

/// The common imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Assert a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Define property tests. Each argument is drawn from its strategy for
/// every case; the body may use the `prop_assert*` macros and `?` on
/// `Result<_, TestCaseError>` expressions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::__case_rng(stringify!($name), __case);
                    let mut __input_parts: ::std::vec::Vec<::std::string::String> =
                        ::std::vec::Vec::new();
                    $(let $arg = {
                        let __v = $crate::Strategy::sample(&($strat), &mut __rng);
                        __input_parts
                            .push(format!(concat!(stringify!($arg), " = {:?}"), &__v));
                        __v
                    };)+
                    let __inputs = __input_parts.join(", ");
                    let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {}/{} failed: {}\n  inputs: {}",
                                __case + 1, config.cases, msg, __inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 3u64..9, (a, b) in (0usize..4, 1u32..=2)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(a < 4);
            prop_assert!(b == 1 || b == 2);
        }

        #[test]
        fn collections_and_options(v in prop::collection::vec(0u64..10, 2..5), o in prop::option::of(1usize..3)) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
            prop_assert!(v.iter().all(|x| *x < 10));
            if let Some(x) = o {
                prop_assert_eq!(x.min(2), x);
            }
        }

        #[test]
        fn maps_compose(y in (1u64..5).prop_flat_map(|n| (0..n).prop_map(move |k| (n, k)))) {
            prop_assert!(y.1 < y.0, "{:?}", y);
            prop_assert_ne!(y.0, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        let s = (0u64..1000, 0usize..7);
        let a: Vec<_> = (0..5)
            .map(|c| s.sample(&mut crate::__case_rng("t", c)))
            .collect();
        let b: Vec<_> = (0..5)
            .map(|c| s.sample(&mut crate::__case_rng("t", c)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(3))]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
