//! Offline subset of the `rand` 0.8 API.
//!
//! The workspace builds without registry access, so this crate provides
//! exactly the surface the rest of the code uses: `SmallRng` (seeded only
//! via [`SeedableRng::seed_from_u64`]), `Rng::{gen, gen_range, gen_bool}`,
//! and the `rngs` module path. The generator is xoshiro256++ seeded
//! through SplitMix64 — the same construction the real `SmallRng` uses on
//! 64-bit targets, so statistical-quality expectations in tests hold.

#![forbid(unsafe_code)]
/// Core generator interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators. Only `seed_from_u64` is provided — it is the only
/// constructor the workspace uses, and it keeps seeding deterministic
/// across platforms.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from raw generator output (stand-in for
/// `distributions::Standard`).
pub trait Fill: Sized {
    /// Draw one value.
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Fill for u64 {
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Fill for u32 {
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Fill for usize {
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Fill for bool {
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Fill for f64 {
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by `Rng::gen_range`. Generic over the element type
/// (rather than an associated type) so integer-literal ranges infer their
/// width from the call site, as with the real crate.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` without multiply bias worth worrying
/// about for simulation workloads: rejection sampling on the top bits.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the draw exactly uniform.
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::fill_from(rng) * (self.end - self.start)
    }
}

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    fn gen<T: Fill>(&mut self) -> T
    where
        Self: Sized,
    {
        T::fill_from(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        f64::fill_from(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 finalizer used for seed expansion.
    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut x = seed;
            let s = [
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(5usize..=5);
            assert_eq!(y, 5);
            let z = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((5_000..7_000).contains(&hits), "p=0.3 gave {hits}/20000");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SmallRng::seed_from_u64(3);
        let _ = r.gen_range(5u64..5);
    }
}
