//! Offline subset of `serde`.
//!
//! Real serde is visitor-based so formats can stream; this workspace only
//! ever moves small scenario/trace/table structures through JSON, so the
//! shim uses the simpler route: every `Serialize` type lowers itself to a
//! [`Value`] tree and every `Deserialize` type lifts itself back out of
//! one. `serde_json` then just prints and parses `Value`s. The derive
//! macros (re-exported from `serde_derive`) generate the same externally
//! tagged representation real serde uses, so emitted JSON is byte-for-byte
//! what the registry crates would produce for these types.

#![forbid(unsafe_code)]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;

/// The self-describing data model every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (also carries `u128` for `ProcessSet` bits).
    U128(u128),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object with field order preserved (matches declaration order, which
    /// is what real serde emits for derived structs).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object. Missing fields read as `Null`, which
    /// lets `Option` fields deserialize to `None` (serde's behaviour).
    pub fn field(&self, name: &str) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// The string inside, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer inside, if this is a non-negative integer that fits.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U128(x) => u64::try_from(*x).ok(),
            _ => None,
        }
    }

    /// The number inside as `f64`, if this is any numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U128(x) => Some(*x as f64),
            Value::I64(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// The boolean inside, if this is a boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U128(_) => "integer",
            Value::I64(_) => "negative integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Build an error message.
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can lift themselves out of a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error(format!("expected {expected}, got {}", got.kind())))
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U128(*self as u128) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                match *v {
                    Value::U128(x) => <$t>::try_from(x)
                        .map_err(|_| Error(format!("integer {x} out of range for {}", stringify!($t)))),
                    ref other => type_err(stringify!($t), other),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self < 0 { Value::I64(*self as i64) } else { Value::U128(*self as u128) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                match *v {
                    Value::U128(x) => u64::try_from(x).ok()
                        .and_then(|x| <$t>::try_from(x).ok())
                        .ok_or_else(|| Error(format!("integer {x} out of range for {}", stringify!($t)))),
                    Value::I64(x) => <$t>::try_from(x)
                        .map_err(|_| Error(format!("integer {x} out of range for {}", stringify!($t)))),
                    ref other => type_err(stringify!($t), other),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, Error> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U128(x) => Ok(x as f64),
            Value::I64(x) => Ok(x as f64),
            ref other => type_err("f64", other),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => type_err("bool", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic field order: sorted keys.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Obj(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<HashMap<String, V>, Error> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => type_err("object", other),
        }
    }
}

macro_rules! impl_tuple {
    ($len:expr, $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<($($t,)+), Error> {
                match v {
                    Value::Arr(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    Value::Arr(items) => Err(Error(format!(
                        "expected array of {}, got {} elements", $len, items.len()
                    ))),
                    other => type_err("array", other),
                }
            }
        }
    };
}

impl_tuple!(2, A.0, B.1);
impl_tuple!(3, A.0, B.1, C.2);
impl_tuple!(4, A.0, B.1, C.2, D.3);

/// Support glue used by the generated derive code. Not a public API.
pub mod __private {
    use super::{Error, Value};

    /// Split an externally tagged enum value into `(variant, payload)`.
    /// A unit variant is a bare string; every other variant is a
    /// single-entry object `{variant: payload}`.
    pub fn variant(v: &Value) -> Result<(&str, Option<&Value>), Error> {
        match v {
            Value::Str(tag) => Ok((tag, None)),
            Value::Obj(fields) if fields.len() == 1 => {
                Ok((fields[0].0.as_str(), Some(&fields[0].1)))
            }
            other => Err(Error(format!(
                "expected enum (string or single-key object), got {}",
                other.kind()
            ))),
        }
    }

    /// Expect a fixed-arity array (tuple variant / tuple struct payload).
    pub fn tuple(v: &Value, len: usize) -> Result<&[Value], Error> {
        match v {
            Value::Arr(items) if items.len() == len => Ok(items),
            Value::Arr(items) => Err(Error(format!(
                "expected {len}-tuple, got {} elements",
                items.len()
            ))),
            other => Err(Error(format!("expected {len}-tuple, got {}", other.kind()))),
        }
    }

    /// Unwrap the payload of a non-unit enum variant.
    pub fn tuple_payload<'a>(
        payload: Option<&'a Value>,
        variant: &str,
    ) -> Result<&'a Value, Error> {
        payload.ok_or_else(|| Error(format!("variant `{variant}` expects a payload")))
    }

    /// Error for an unknown enum variant tag.
    pub fn unknown_variant(ty: &str, tag: &str) -> Error {
        Error(format!("unknown {ty} variant `{tag}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_and_missing_fields() {
        let obj = Value::Obj(vec![("a".into(), Value::U128(3))]);
        assert_eq!(<Option<u64>>::from_value(obj.field("a")).unwrap(), Some(3));
        assert_eq!(<Option<u64>>::from_value(obj.field("zzz")).unwrap(), None);
        assert!(u64::from_value(obj.field("zzz")).is_err());
    }

    #[test]
    fn tuples_round_trip() {
        let v = (1u64, "x".to_string()).to_value();
        assert_eq!(
            <(u64, String)>::from_value(&v).unwrap(),
            (1, "x".to_string())
        );
    }

    #[test]
    fn signed_integers_round_trip() {
        for x in [-5i64, 0, 5] {
            assert_eq!(i64::from_value(&x.to_value()).unwrap(), x);
        }
    }

    #[test]
    fn u128_survives() {
        let big = u128::MAX - 7;
        assert_eq!(u128::from_value(&big.to_value()).unwrap(), big);
    }
}
