//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (the build has no
//! registry access, so no syn/quote). The derive only needs item, variant,
//! and field *names* — serialization lowers every field with
//! `serde::Serialize::to_value(&self.field)` and deserialization leans on
//! type inference through `serde::Deserialize::from_value`, so types never
//! have to be parsed, only skipped. Generics are rejected; none of the
//! workspace's serialized types are generic.

#![forbid(unsafe_code)]
use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => match mode {
            Mode::Serialize => gen_serialize(&item),
            Mode::Deserialize => gen_deserialize(&item),
        },
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

/// Consume `#[...]` / `#![...]` attribute tokens at the cursor.
fn skip_attrs(toks: &mut Tokens) {
    while toks.peek().map(|t| is_punct(t, '#')).unwrap_or(false) {
        toks.next();
        if toks.peek().map(|t| is_punct(t, '!')).unwrap_or(false) {
            toks.next();
        }
        toks.next(); // the [...] group
    }
}

/// Consume `pub`, `pub(crate)`, `pub(in ...)` at the cursor.
fn skip_visibility(toks: &mut Tokens) {
    if let Some(TokenTree::Ident(id)) = toks.peek() {
        if id.to_string() == "pub" {
            toks.next();
            if let Some(TokenTree::Group(g)) = toks.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    toks.next();
                }
            }
        }
    }
}

/// Consume tokens until a top-level `,` (angle-bracket depth aware),
/// eating the comma too. Used to skip field types and discriminants.
fn skip_past_comma(toks: &mut Tokens) {
    let mut depth = 0i32;
    for tt in toks.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
    }
}

fn expect_ident(toks: &mut Tokens, what: &str) -> Result<String, String> {
    match toks.next() {
        Some(TokenTree::Ident(id)) => Ok(id.to_string()),
        other => Err(format!("serde derive: expected {what}, found {other:?}")),
    }
}

fn parse_named_fields(group: TokenStream) -> Result<Vec<String>, String> {
    let mut toks: Tokens = group.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attrs(&mut toks);
        if toks.peek().is_none() {
            return Ok(names);
        }
        skip_visibility(&mut toks);
        names.push(expect_ident(&mut toks, "field name")?);
        match toks.next() {
            Some(tt) if is_punct(&tt, ':') => {}
            other => return Err(format!("serde derive: expected `:`, found {other:?}")),
        }
        skip_past_comma(&mut toks);
    }
}

fn count_tuple_fields(group: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut in_segment = false;
    for tt in group {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if in_segment {
                        fields += 1;
                    }
                    in_segment = false;
                    continue;
                }
                _ => {}
            }
        }
        in_segment = true;
    }
    if in_segment {
        fields += 1;
    }
    fields
}

fn parse_variants(group: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut toks: Tokens = group.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut toks);
        if toks.peek().is_none() {
            return Ok(variants);
        }
        let name = expect_ident(&mut toks, "variant name")?;
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream())?;
                toks.next();
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        skip_past_comma(&mut toks);
        variants.push((name, fields));
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut toks: Tokens = input.into_iter().peekable();
    loop {
        skip_attrs(&mut toks);
        skip_visibility(&mut toks);
        match toks.next() {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(&mut toks, "struct name")?;
                return match toks.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        Err(format!("serde derive: generic type `{name}` not supported"))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Ok(Item::Struct {
                            name,
                            fields: Fields::Named(parse_named_fields(g.stream())?),
                        })
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Ok(Item::Struct {
                            name,
                            fields: Fields::Tuple(count_tuple_fields(g.stream())),
                        })
                    }
                    Some(tt) if is_punct(&tt, ';') => Ok(Item::Struct {
                        name,
                        fields: Fields::Unit,
                    }),
                    other => Err(format!(
                        "serde derive: unexpected token after struct name: {other:?}"
                    )),
                };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(&mut toks, "enum name")?;
                return match toks.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        Err(format!("serde derive: generic type `{name}` not supported"))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Ok(Item::Enum {
                            name,
                            variants: parse_variants(g.stream())?,
                        })
                    }
                    other => Err(format!(
                        "serde derive: unexpected token after enum name: {other:?}"
                    )),
                };
            }
            Some(TokenTree::Ident(_)) => continue, // `union` would fall through to an error later
            Some(other) => return Err(format!("serde derive: unexpected token {other:?}")),
            None => return Err("serde derive: no struct or enum found".to_string()),
        }
    }
}

fn ser_named_body(fields: &[String], accessor: &dyn Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), serde::Serialize::to_value({})),",
                accessor(f)
            )
        })
        .collect();
    format!("serde::Value::Obj(::std::vec![{}])", entries.join(" "))
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "serde::Value::Null".to_string(),
                Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Serialize::to_value(&self.{i}),"))
                        .collect();
                    format!("serde::Value::Arr(::std::vec![{}])", items.join(" "))
                }
                Fields::Named(names) => ser_named_body(names, &|f| format!("&self.{f}")),
            };
            format!(
                "impl serde::Serialize for {name} {{ \
                   fn to_value(&self) -> serde::Value {{ {body} }} \
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{vname} => serde::Value::Str(::std::string::String::from({vname:?})),"
                    ),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b}),"))
                                .collect();
                            format!("serde::Value::Arr(::std::vec![{}])", items.join(" "))
                        };
                        format!(
                            "{name}::{vname}({}) => serde::Value::Obj(::std::vec![\
                               (::std::string::String::from({vname:?}), {payload})]),",
                            binders.join(", ")
                        )
                    }
                    Fields::Named(fnames) => {
                        let payload = ser_named_body(fnames, &|f| f.to_string());
                        format!(
                            "{name}::{vname} {{ {} }} => serde::Value::Obj(::std::vec![\
                               (::std::string::String::from({vname:?}), {payload})]),",
                            fnames.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{ \
                   fn to_value(&self) -> serde::Value {{ match self {{ {} }} }} \
                 }}",
                arms.join(" ")
            )
        }
    }
}

fn de_named_body(ctor: &str, fields: &[String], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: serde::Deserialize::from_value({source}.field({f:?}))?,"))
        .collect();
    format!(
        "::std::result::Result::Ok({ctor} {{ {} }})",
        inits.join(" ")
    )
}

fn de_tuple_items(n: usize, slice: &str) -> String {
    (0..n)
        .map(|i| format!("serde::Deserialize::from_value(&{slice}[{i}])?,"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields } => match fields {
            Fields::Unit => format!("::std::result::Result::Ok({name})"),
            Fields::Tuple(1) => {
                format!("::std::result::Result::Ok({name}(serde::Deserialize::from_value(v)?))")
            }
            Fields::Tuple(n) => format!(
                "let __t = serde::__private::tuple(v, {n})?; \
                 ::std::result::Result::Ok({name}({}))",
                de_tuple_items(*n, "__t")
            ),
            Fields::Named(fnames) => format!(
                "if !matches!(v, serde::Value::Obj(_)) {{ \
                   return ::std::result::Result::Err(serde::Error::msg(\
                     ::std::format!(\"expected object for struct {name}\"))); \
                 }} {}",
                de_named_body(name, fnames, "v")
            ),
        },
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, fields)| match fields {
                    Fields::Unit => {
                        format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                    }
                    Fields::Tuple(1) => format!(
                        "{vname:?} => {{ let __p = serde::__private::tuple_payload(__payload, {vname:?})?; \
                         ::std::result::Result::Ok({name}::{vname}(serde::Deserialize::from_value(__p)?)) }},"
                    ),
                    Fields::Tuple(n) => format!(
                        "{vname:?} => {{ let __p = serde::__private::tuple_payload(__payload, {vname:?})?; \
                         let __t = serde::__private::tuple(__p, {n})?; \
                         ::std::result::Result::Ok({name}::{vname}({})) }},",
                        de_tuple_items(*n, "__t")
                    ),
                    Fields::Named(fnames) => format!(
                        "{vname:?} => {{ let __p = serde::__private::tuple_payload(__payload, {vname:?})?; {} }},",
                        de_named_body(&format!("{name}::{vname}"), fnames, "__p")
                    ),
                })
                .collect();
            format!(
                "let (__tag, __payload) = serde::__private::variant(v)?; \
                 match __tag {{ {} __other => ::std::result::Result::Err(\
                   serde::__private::unknown_variant({name:?}, __other)), }}",
                arms.join(" ")
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl serde::Deserialize for {name} {{ \
           fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{ {body} }} \
         }}"
    )
}
