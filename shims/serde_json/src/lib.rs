//! Offline subset of `serde_json`: print and parse the serde shim's
//! [`Value`] tree. Output matches real serde_json byte-for-byte for the
//! shapes this workspace emits — compact `{"k":v}` with no spaces, and
//! 2-space-indented pretty printing — so downstream JSON consumers and
//! golden assertions behave identically against the registry crate.

#![forbid(unsafe_code)]
use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.0)
    }
}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Lower any serializable value to a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Rebuild a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    Ok(T::from_value(value)?)
}

/// Compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Human-readable JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Compact JSON bytes.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Pretty JSON bytes.
pub fn to_vec_pretty<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Parse JSON text into any deserializable type (use `T = serde::Value`
/// for the raw tree).
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&v)?)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // Rust's shortest round-trip formatting, with serde_json's
        // convention that integral floats keep a `.0` marker.
        let s = format!("{x}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // serde_json emits null for non-finite floats.
        out.push_str("null");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U128(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_pretty(v: &Value, level: usize, out: &mut String) {
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(level + 1, out);
                write_pretty(item, level + 1, out);
            }
            out.push('\n');
            indent(level, out);
            out.push(']');
        }
        Value::Obj(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(level + 1, out);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, level + 1, out);
            }
            out.push('\n');
            indent(level, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    fields.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our writers;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c => {
                    // Collect the full UTF-8 sequence starting at c.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match c {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let end = (start + width).min(self.bytes.len());
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(x) = rest.parse::<u64>() {
                    return Ok(Value::I64(-(x as i64)));
                }
            } else if let Ok(x) = text.parse::<u128>() {
                return Ok(Value::U128(x));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_format_matches_serde_json() {
        let v = Value::Obj(vec![
            ("id".into(), Value::Str("E2".into())),
            (
                "rows".into(),
                Value::Arr(vec![Value::U128(1), Value::Null, Value::Bool(true)]),
            ),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"id":"E2","rows":[1,null,true]}"#
        );
    }

    #[test]
    fn pretty_format_indents_by_two() {
        let v = Value::Obj(vec![("a".into(), Value::Arr(vec![Value::U128(1)]))]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn parse_round_trip() {
        let text = r#"{"n":3,"neg":-7,"f":0.25,"s":"a\"b\n","arr":[[1,2],{}],"none":null}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn big_integers_keep_precision() {
        let big = (u128::from(u64::MAX)) + 12345;
        let v: Value = from_str(&big.to_string()).unwrap();
        assert_eq!(v, Value::U128(big));
        let exact: u128 = from_value(&v).unwrap();
        assert_eq!(exact, big);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string(&Value::Obj(vec![])).unwrap(), "{}");
        assert_eq!(to_string_pretty(&Value::Arr(vec![])).unwrap(), "[]");
        let v: Value = from_str("  [ ]  ").unwrap();
        assert_eq!(v, Value::Arr(vec![]));
    }
}
