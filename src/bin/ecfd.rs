//! `ecfd` — scenario driver CLI.
//!
//! Run consensus instances, failure detectors, or a replicated log over
//! the deterministic simulator, straight from the command line:
//!
//! ```bash
//! ecfd consensus --n 7 --protocol ec --crash 2@50 --seed 9 --timeline
//! ecfd detector --kind ring --n 6 --crash 3@200 --run-ms 3000
//! ecfd log --n 5 --commands 8 --crash 4@40
//! ecfd classes
//! ```
//!
//! Argument parsing is hand-rolled (the workspace deliberately has no CLI
//! dependency); `--help` prints the grammar.

use ecfd::prelude::*;
use fd_consensus::{ConsensusNode, EcMergedConsensus, MultiEc, MultiNode};
use fd_core::Standalone;
use fd_detectors::{
    FusedConfig, FusedDetector, HeartbeatDetector, OmegaGossip, OmegaGossipConfig, OmegaGossipNode,
    RingDetector, StableLeaderConfig, StableLeaderDetector, VCubeConfig, VCubeDetector,
};
use std::process::ExitCode;

/// Count heap allocations so `bench-kernel` can report allocs/event.
/// One relaxed atomic increment per allocation; free for every other
/// subcommand in practice.
#[global_allocator]
static ALLOC: fd_obs::CountingAllocator = fd_obs::CountingAllocator;

const HELP: &str = "\
ecfd — eventually consistent failure detectors, runnable

USAGE:
  ecfd consensus [--n N] [--protocol ec|ecm|ct|mr|paxos] [--seed S]
                 [--crash P@MS ...] [--horizon-ms MS] [--timeline]
  ecfd detector  [--kind heartbeat|ring|leader|fused|stable|gossip|vcube]
                 [--n N] [--seed S] [--crash P@MS ...] [--run-ms MS] [--timeline]
  ecfd log       [--n N] [--commands K] [--seed S] [--crash P@MS ...]
  ecfd campaign  --scenario NAME [--seeds A..B] [--jobs N] [--artifact-dir DIR]
                 [--metrics-out FILE]
  ecfd campaign  --plan FILE [--scenario chaos|kv] [--seeds A..B] [--jobs N]
                 [--artifact-dir DIR]
  ecfd campaign  --replay FILE [--shrink] [--metrics-out FILE]
  ecfd bench-kernel [--seeds N] [--out FILE] [--micro-out FILE]
                 [--check BASELINE] [--threshold PCT]
  ecfd bench-scale [--n N ...] [--seeds N] [--out FILE]
                 [--check BASELINE] [--threshold PCT]
  ecfd kv-bench  [--seeds N] [--out FILE]
  ecfd obs-report FILE
  ecfd lint      [--format human|json] [--deny-warnings] [--rule ID ...]
                 [--root DIR] [--graph-out FILE] [--graph-format json|dot]
  ecfd mc        (--detector hb|ring|leader | --protocol ec|ct|paxos|multi | --all)
                 [--n N] [--horizon-ms MS] [--depth D] [--crashes K] [--drops L]
                 [--crash-window-ms MS] [--crash-grid-ms MS] [--max-runs R]
                 [--no-por] [--no-dedup] [--por-baseline]
                 [--witness-dir DIR] [--json FILE]
  ecfd mc        --replay FILE (--detector X | --protocol X)
  ecfd classes
  ecfd help

OPTIONS:
  --n N             number of processes (default 5)
  --protocol X      consensus protocol: ec (the paper's ◇C algorithm, default),
                    ecm (merged Phase 0/1 variant), ct (Chandra–Toueg ◇S),
                    mr (Mostefaoui–Raynal Ω), paxos (single-decree synod)
  --kind X          failure detector family (default heartbeat)
  --seed S          run seed (default 42); same seed ⇒ identical run
  --crash P@MS      crash process P at MS milliseconds (repeatable)
  --horizon-ms MS   consensus give-up horizon (default 10000)
  --run-ms MS       detector run length (default 3000)
  --commands K      commands submitted to the replicated log (default 6)
  --timeline        print the chronological observation timeline
  --max-processes N cap on distinct processes in a --timeline listing
                    (default 64): larger casts degrade to the one-line
                    summary instead of flooding the terminal

CAMPAIGN OPTIONS:
  --scenario NAME   campaign scenario (e8, chaos, kv, blind)
  --plan FILE       run a fixed chaos plan (JSON, see crates/fd-chaos/CATALOG.md)
                    for every seed; defaults to --scenario chaos, combine
                    with --scenario kv to drive the replicated KV service
                    under the plan. A missing or malformed plan file
                    exits with code 2 and a file/parse diagnostic.
  --seeds A..B      seed range to sweep, half-open (default 0..100)
  --jobs N          worker threads (default: all cores)
  --artifact-dir D  where failing seeds write repro JSON (default target/campaign)
  --replay FILE     re-execute a repro artifact instead of sweeping
  --shrink          after a replay, greedily minimize the counterexample
  --metrics-out F   write kernel/campaign metrics as JSON Lines to F
                    (render later with `ecfd obs-report F`); per-seed
                    verdicts and digests are identical with or without it

BENCH-SCALE OPTIONS:
  --n N             restrict the sweep to world size N (repeatable;
                    default 64, 256, 1024 and 4096)
  --seeds N         seeds per cell (default 4)
  --out FILE        write the scale benchmark JSON to FILE
                    (same shape as the committed BENCH_scale.json)
  --check BASELINE  compare per-cell events_per_sec against a baseline
                    BENCH_scale.json; exit nonzero on regression
  --threshold PCT   allowed events_per_sec drop vs baseline, percent
                    (default 25)

BENCH-KERNEL OPTIONS:
  --seeds N         seeds in the E8 throughput sweep (default 1000)
  --out FILE        write the kernel benchmark JSON to FILE
                    (same shape as the committed BENCH_kernel.json)
  --micro-out FILE  write the microbenchmark suite JSON to FILE
                    (default: BENCH_micro.json next to --out)
  --check BASELINE  compare events_per_sec against a baseline
                    BENCH_kernel.json; exit nonzero on regression
  --threshold PCT   allowed events_per_sec drop vs baseline, percent
                    (default 25)

KV-BENCH OPTIONS:
  --seeds N         seeds per detector class in the standard
                    crash/restart plan (default 200)
  --out FILE        write the serving-stack benchmark JSON to FILE
                    (same shape as the committed BENCH_kv.json)

LINT OPTIONS:
  --format F        report format: human (default) or json
  --deny-warnings   treat warn-level findings as errors (CI runs this)
  --rule ID         run only the named rule (repeatable; see
                    crates/fd-lint/RULES.md for the catalog)
  --root DIR        workspace root to scan (default: nearest ancestor
                    with a [workspace] Cargo.toml)
  --graph-out FILE  also dump the workspace call graph the HP rules
                    reason over (hot-path roots marked)
  --graph-format F  call-graph dump format: json (default) or dot

  Exit codes: 0 clean, 1 findings, 2 internal error (bad flags,
  unknown rule ID, unreadable workspace).

MC OPTIONS (bounded exhaustive schedule exploration, see fd-mc):
  --detector X      explore a standalone detector world: hb, ring, leader
  --protocol X      explore a consensus stack: ec (with the retransmission
                    watchdog), ct, paxos, or the multi replicated log
  --all             explore every detector class and every protocol
  --n N             processes (default 3; exhaustive exploration is meant
                    for n=3..4)
  --horizon-ms MS   run horizon per execution (default 300)
  --depth D         recorded choice points per run; nondeterminism past
                    the cap is resolved canonically (default 6)
  --crashes K       max crash victims per schedule, placed exhaustively
                    on the time grid (default 0)
  --drops L         max forced message losses per run (default 0)
  --crash-window-ms MS  crash placement window (default 100)
  --crash-grid-ms MS    crash placement grid step (default 25)
  --max-runs R      hard cap on executions; exceeding it reports a
                    truncated (non-exhaustive) search (default 200000)
  --no-por          disable sleep-set partial-order reduction
  --no-dedup        disable visited-state pruning
  --por-baseline    also run with POR off and report the reduction factor
  --witness-dir D   where violation witnesses are written
                    (default target/mc-witnesses)
  --json FILE       write the full exploration reports as JSON
  --replay FILE     replay a witness JSON byte-identically instead of
                    exploring (target flags select the world to replay on)

  Exit codes: 0 exhaustive and clean (replay: reproduced), 1 violations
  found or replay diverged, 2 bad flags / setup errors.
";

#[derive(Debug, Default)]
struct Args {
    n: usize,
    seed: u64,
    protocol: String,
    kind: String,
    crashes: Vec<(usize, u64)>,
    horizon_ms: u64,
    run_ms: u64,
    commands: u64,
    timeline: bool,
    scenario: String,
    seeds: (u64, u64),
    jobs: usize,
    artifact_dir: String,
    replay: Option<String>,
    plan: Option<String>,
    shrink: bool,
    metrics_out: Option<String>,
    max_processes: usize,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut a = Args {
        n: 5,
        seed: 42,
        protocol: "ec".into(),
        kind: "heartbeat".into(),
        horizon_ms: 10_000,
        run_ms: 3_000,
        commands: 6,
        seeds: (0, 100),
        jobs: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        artifact_dir: "target/campaign".into(),
        max_processes: 64,
        ..Args::default()
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut take = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--n" => a.n = take()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--seed" => a.seed = take()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--protocol" => a.protocol = take()?.clone(),
            "--kind" => a.kind = take()?.clone(),
            "--horizon-ms" => {
                a.horizon_ms = take()?.parse().map_err(|e| format!("--horizon-ms: {e}"))?
            }
            "--run-ms" => a.run_ms = take()?.parse().map_err(|e| format!("--run-ms: {e}"))?,
            "--commands" => a.commands = take()?.parse().map_err(|e| format!("--commands: {e}"))?,
            "--timeline" => a.timeline = true,
            "--max-processes" => {
                a.max_processes = take()?
                    .parse()
                    .map_err(|e| format!("--max-processes: {e}"))?;
                if a.max_processes == 0 {
                    return Err("--max-processes must be at least 1".into());
                }
            }
            "--scenario" => a.scenario = take()?.clone(),
            "--seeds" => {
                let spec = take()?;
                let (lo, hi) = spec
                    .split_once("..")
                    .ok_or_else(|| format!("--seeds wants A..B (half-open), got {spec}"))?;
                a.seeds = (
                    lo.parse().map_err(|e| format!("--seeds start: {e}"))?,
                    hi.parse().map_err(|e| format!("--seeds end: {e}"))?,
                );
                if a.seeds.0 >= a.seeds.1 {
                    return Err(format!(
                        "--seeds: empty range {spec} (half-open A..B needs B > A)"
                    ));
                }
            }
            "--jobs" => {
                a.jobs = take()?.parse().map_err(|e| format!("--jobs: {e}"))?;
                if a.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--artifact-dir" => a.artifact_dir = take()?.clone(),
            "--replay" => a.replay = Some(take()?.clone()),
            "--plan" => a.plan = Some(take()?.clone()),
            "--shrink" => a.shrink = true,
            "--metrics-out" => a.metrics_out = Some(take()?.clone()),
            "--crash" => {
                let spec = take()?;
                let (p, ms) = spec
                    .split_once('@')
                    .ok_or_else(|| format!("--crash wants P@MS, got {spec}"))?;
                a.crashes.push((
                    p.parse().map_err(|e| format!("--crash process: {e}"))?,
                    ms.parse().map_err(|e| format!("--crash time: {e}"))?,
                ));
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if a.n == 0 || a.n > fd_core::MAX_PROCESSES {
        return Err(format!("--n must be in 1..={}", fd_core::MAX_PROCESSES));
    }
    for &(p, _) in &a.crashes {
        if p >= a.n {
            return Err(format!("--crash process p{p} out of range for n={}", a.n));
        }
    }
    if 2 * a.crashes.len() >= a.n {
        eprintln!(
            "warning: {} crashes with n={} violates f < n/2 — liveness not guaranteed",
            a.crashes.len(),
            a.n
        );
    }
    Ok(a)
}

fn scenario_of(a: &Args) -> Scenario {
    let mut sc = Scenario::failure_free(a.n, a.seed, Time::from_millis(a.horizon_ms));
    for &(p, ms) in &a.crashes {
        sc = sc.with_crash(ProcessId(p), Time::from_millis(ms));
    }
    sc
}

fn print_timeline(trace: &fd_sim::Trace, max_processes: usize) {
    println!("\ntimeline:");
    print!(
        "{}",
        fd_sim::Timeline::new(trace)
            .max_processes(max_processes)
            .render()
    );
}

fn cmd_consensus(a: &Args) -> Result<(), String> {
    let sc = scenario_of(a);
    println!(
        "consensus: protocol={} n={} seed={} crashes={:?}",
        a.protocol, a.n, a.seed, a.crashes
    );
    let r = match a.protocol.as_str() {
        "ec" => run_scenario(default_net(a.n), &sc, fd_consensus::ec_node_hb),
        "ct" => run_scenario(default_net(a.n), &sc, fd_consensus::ct_node_hb),
        "mr" => run_scenario(default_net(a.n), &sc, fd_consensus::mr_node_leader),
        "paxos" => run_scenario(default_net(a.n), &sc, fd_consensus::paxos_node_leader),
        "ecm" => run_scenario(default_net(a.n), &sc, |pid, n| {
            ConsensusNode::new(
                pid,
                LeaderByFirstNonSuspected::new(
                    HeartbeatDetector::new(pid, n, HeartbeatConfig::default()),
                    n,
                ),
                EcMergedConsensus::new(pid, n, ConsensusConfig::default()),
            )
        }),
        other => return Err(format!("unknown protocol {other} (ec|ecm|ct|mr|paxos)")),
    };
    if !r.all_decided {
        return Err(
            "no decision before the horizon (crashed majority, or horizon too small)".into(),
        );
    }
    let check = ConsensusRun::new(&r.trace, a.n);
    check.check_all().map_err(|v| v.to_string())?;
    println!(
        "decided {} in round {} at {} ({} protocol messages)",
        r.decided_value(),
        r.max_decision_round().unwrap(),
        r.decide_time.unwrap(),
        r.metrics.sent_total(),
    );
    println!("uniform agreement + validity + integrity + termination verified ✓");
    if a.timeline {
        print_timeline(&r.trace, a.max_processes);
    }
    Ok(())
}

fn cmd_detector(a: &Args) -> Result<(), String> {
    println!(
        "detector: kind={} n={} seed={} crashes={:?}",
        a.kind, a.n, a.seed, a.crashes
    );
    let net = default_net(a.n);
    let mut b = WorldBuilder::new(net).seed(a.seed);
    for &(p, ms) in &a.crashes {
        b = b.crash_at(ProcessId(p), Time::from_millis(ms));
    }
    let end = Time::from_millis(a.run_ms);
    let (trace, metrics) = match a.kind.as_str() {
        "heartbeat" => {
            let mut w = b.build(|pid, n| {
                Standalone(LeaderByFirstNonSuspected::new(
                    HeartbeatDetector::new(pid, n, HeartbeatConfig::default()),
                    n,
                ))
            });
            w.run_until_time(end);
            w.into_results()
        }
        "ring" => {
            let mut w = b.build(|pid, n| {
                Standalone(LeaderByFirstNonSuspected::new(
                    RingDetector::new(pid, n, RingConfig::default()),
                    n,
                ))
            });
            w.run_until_time(end);
            w.into_results()
        }
        "leader" => {
            let mut w =
                b.build(|pid, n| Standalone(LeaderDetector::new(pid, n, LeaderConfig::default())));
            w.run_until_time(end);
            w.into_results()
        }
        "fused" => {
            let mut w =
                b.build(|pid, n| Standalone(FusedDetector::new(pid, n, FusedConfig::default())));
            w.run_until_time(end);
            w.into_results()
        }
        "stable" => {
            let mut w = b.build(|pid, n| {
                Standalone(StableLeaderDetector::new(
                    pid,
                    n,
                    StableLeaderConfig::default(),
                ))
            });
            w.run_until_time(end);
            w.into_results()
        }
        "gossip" => {
            let mut w = b.build(|pid, n| {
                OmegaGossipNode::new(
                    HeartbeatDetector::new(pid, n, HeartbeatConfig::default()),
                    OmegaGossip::new(pid, n, OmegaGossipConfig::default()),
                )
            });
            w.run_until_time(end);
            w.into_results()
        }
        "vcube" => {
            let mut w = b.build(|pid, n| {
                Standalone(LeaderByFirstNonSuspected::new(
                    VCubeDetector::new(pid, n, VCubeConfig::default()),
                    n,
                ))
            });
            w.run_until_time(end);
            w.into_results()
        }
        other => return Err(format!("unknown detector {other}")),
    };
    let run = FdRun::new(&trace, a.n, end);
    println!("{}", fd_sim::trace_summary(&trace));
    for p in run.correct().iter() {
        println!(
            "  {p}: suspects {}  trusts {}",
            run.final_suspects(p),
            run.final_trusted(p)
                .map_or("-".to_string(), |q| q.to_string()),
        );
    }
    for class in [
        FdClass::EventuallyConsistent,
        FdClass::EventuallyPerfect,
        FdClass::Omega,
    ] {
        match run.check_class(class) {
            Ok(()) => println!("  {class}: holds ✓"),
            Err(v) => println!("  {class}: {v}"),
        }
    }
    println!("  total messages: {}", metrics.sent_total());
    if a.timeline {
        print_timeline(&trace, a.max_processes);
    }
    Ok(())
}

fn cmd_log(a: &Args) -> Result<(), String> {
    println!(
        "replicated log: n={} commands={} seed={} crashes={:?}",
        a.n, a.commands, a.seed, a.crashes
    );
    let mut b = WorldBuilder::new(default_net(a.n)).seed(a.seed);
    for &(p, ms) in &a.crashes {
        b = b.crash_at(ProcessId(p), Time::from_millis(ms));
    }
    let mut w = b.build(|pid, n| {
        MultiNode::new(
            pid,
            LeaderByFirstNonSuspected::new(
                HeartbeatDetector::new(pid, n, HeartbeatConfig::default()),
                n,
            ),
            MultiEc::new(pid, n, ConsensusConfig::default()),
        )
    });
    for k in 0..a.commands {
        let submitter = (k as usize) % a.n;
        let cmd = 1000 + k;
        w.interact(ProcessId(submitter), move |node, ctx| node.submit(ctx, cmd));
    }
    let crashed: Vec<usize> = a.crashes.iter().map(|&(p, _)| p).collect();
    let survivor_cmds: Vec<u64> = (0..a.commands)
        .filter(|&k| !crashed.contains(&((k as usize) % a.n)))
        .map(|k| 1000 + k)
        .collect();
    let done = w.run_until(Time::from_millis(a.horizon_ms), |w| {
        w.correct().iter().all(|&p| {
            let vals: Vec<u64> = w.actor(p).log().iter().map(|(_, v)| *v).collect();
            survivor_cmds.iter().all(|c| vals.contains(c))
        })
    });
    if !done {
        return Err("log did not converge before the horizon".into());
    }
    let reference_pid = *w.correct().first().expect("a survivor");
    let log = w.actor(ProcessId(reference_pid.index())).log();
    println!("log at {reference_pid} ({} slots, {}):", log.len(), w.now());
    for (slot, v) in &log {
        if *v == fd_consensus::NOOP {
            println!("  [{slot}] (noop)");
        } else {
            println!("  [{slot}] command {v}");
        }
    }
    Ok(())
}

/// Campaign failures that must map to distinct process exit codes:
/// "a seed violated a property" (1) and "the sweep never started —
/// bad plan file, unknown scenario" (2) mean different things to CI.
enum CampaignError {
    /// Setup never completed: unreadable/unparseable plan file, unknown
    /// scenario name, contradictory flags. Exit code 2.
    Setup(String),
    /// The sweep (or replay) ran and found failures. Exit code 1.
    Run(String),
}

fn cmd_campaign(a: &Args) -> ExitCode {
    match run_campaign(a) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CampaignError::Run(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Err(CampaignError::Setup(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

/// Load the fixed plan behind `--plan` and wrap it in the scenario
/// `--scenario` picked (chaos by default, `kv` for the KV service).
/// Every failure here is a [`CampaignError::Setup`]: the file is
/// missing, unreadable, not JSON, not a chaos plan, or illegal.
fn plan_scenario(a: &Args, path: &str) -> Result<Box<dyn fd_campaign::Scenario>, CampaignError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CampaignError::Setup(format!("--plan {path}: {e}")))?;
    let plan: fd_chaos::ChaosPlan = serde_json::from_str(&text)
        .map_err(|e| CampaignError::Setup(format!("--plan {path}: not a chaos plan: {e}")))?;
    println!(
        "fixed chaos plan {path}: n={} detector={:?} horizon={} events={}",
        plan.n,
        plan.detector,
        plan.horizon,
        plan.events.len()
    );
    match a.scenario.as_str() {
        "" | fd_chaos::CHAOS => Ok(Box::new(
            fd_chaos::ChaosScenario::fixed(plan)
                .map_err(|e| CampaignError::Setup(format!("--plan {path}: {e}")))?,
        )),
        fd_kv::KV => {
            Ok(Box::new(fd_kv::KvScenario::fixed(plan).map_err(|e| {
                CampaignError::Setup(format!("--plan {path}: {e}"))
            })?))
        }
        other => Err(CampaignError::Setup(format!(
            "--plan drives the chaos or kv scenario; it cannot combine with --scenario {other:?}"
        ))),
    }
}

fn run_campaign(a: &Args) -> Result<(), CampaignError> {
    use fd_bench::campaign::{scenario_by_name, scenario_names};

    if let Some(path) = &a.replay {
        let path = std::path::Path::new(path);
        let artifact = fd_campaign::Artifact::load(path).map_err(CampaignError::Setup)?;
        let scenario = scenario_by_name(&artifact.scenario).ok_or_else(|| {
            CampaignError::Setup(format!(
                "artifact names unknown scenario {:?}",
                artifact.scenario
            ))
        })?;
        println!(
            "replaying {}: scenario {} seed {} property {}",
            path.display(),
            artifact.scenario,
            artifact.seed,
            artifact.property
        );
        let r = fd_campaign::replay(scenario.as_ref(), &artifact).map_err(CampaignError::Run)?;
        match &r.violation {
            Some(detail) => println!("violation reproduced ✓  {detail}"),
            None => println!("violation did NOT reproduce"),
        }
        println!(
            "trace digest {:#018x} ({})",
            r.digest,
            if r.digest_matches {
                "matches artifact"
            } else {
                "DIFFERS from artifact"
            }
        );
        if a.shrink {
            if !r.reproduced() {
                return Err(CampaignError::Run(
                    "refusing to shrink: the violation did not reproduce".into(),
                ));
            }
            let out =
                fd_campaign::shrink(scenario.as_ref(), &artifact).map_err(CampaignError::Run)?;
            println!(
                "shrunk in {} accepted steps ({} attempts):",
                out.applied.len(),
                out.attempts
            );
            for step in &out.applied {
                println!("  - {step}");
            }
            if let Some(metrics_path) = &a.metrics_out {
                let registry = fd_obs::Registry::new();
                registry
                    .counter(fd_obs::keys::CAMPAIGN_SHRINK_STEPS)
                    .add(out.applied.len() as u64);
                registry
                    .counter(fd_obs::keys::CAMPAIGN_SHRINK_ATTEMPTS)
                    .add(out.attempts as u64);
                let metrics_path = std::path::Path::new(metrics_path);
                fd_obs::write_jsonl_file(metrics_path, &registry.snapshot())
                    .map_err(|e| CampaignError::Run(format!("{}: {e}", metrics_path.display())))?;
                println!("metrics: {}", metrics_path.display());
            }
            let min = artifact_sibling(path, &out.artifact).map_err(CampaignError::Run)?;
            println!("minimal counterexample: {}", min.display());
        }
        return if r.reproduced() {
            Ok(())
        } else {
            Err(CampaignError::Run("artifact is stale".into()))
        };
    }

    let scenario: Box<dyn fd_campaign::Scenario> = if let Some(path) = &a.plan {
        plan_scenario(a, path)?
    } else {
        if a.scenario.is_empty() {
            return Err(CampaignError::Setup(format!(
                "--scenario is required (known: {})",
                scenario_names().join(", ")
            )));
        }
        scenario_by_name(&a.scenario).ok_or_else(|| {
            CampaignError::Setup(format!(
                "unknown scenario {:?} (known: {})",
                a.scenario,
                scenario_names().join(", ")
            ))
        })?
    };
    let registry = fd_obs::Registry::new();
    let mut campaign = fd_campaign::Campaign::new(scenario.as_ref(), a.seeds.0..a.seeds.1)
        .jobs(a.jobs)
        .artifact_dir(&a.artifact_dir);
    if a.metrics_out.is_some() {
        campaign = campaign.observe(&registry);
    }
    let report = campaign.run();
    print!("{}", report.render());
    if let Some(metrics_path) = &a.metrics_out {
        let metrics_path = std::path::Path::new(metrics_path);
        fd_campaign::write_metrics_file(metrics_path, &report, &registry)
            .map_err(|e| CampaignError::Run(format!("{}: {e}", metrics_path.display())))?;
        println!("metrics: {}", metrics_path.display());
    }
    if report.failed() > 0 {
        Err(CampaignError::Run(format!(
            "{} of {} seeds violated a property",
            report.failed(),
            report.results.len()
        )))
    } else {
        Ok(())
    }
}

/// Write a shrunk artifact next to the one it came from, `-min` suffixed.
fn artifact_sibling(
    original: &std::path::Path,
    artifact: &fd_campaign::Artifact,
) -> Result<std::path::PathBuf, String> {
    let stem = original
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("artifact");
    let path = original.with_file_name(format!("{stem}-min.json"));
    let json = serde_json::to_string_pretty(artifact).map_err(|e| e.to_string())?;
    std::fs::write(&path, json).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(path)
}

/// Render a metrics JSONL file written by `campaign --metrics-out`.
fn cmd_obs_report(rest: &[String]) -> Result<(), String> {
    let [path] = rest else {
        return Err("obs-report wants exactly one argument: the metrics JSONL file".into());
    };
    let path = std::path::Path::new(path);
    let rows = fd_obs::read_jsonl_file(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let text =
        fd_campaign::render_metrics(&rows).map_err(|e| format!("{}: {e}", path.display()))?;
    print!("{text}");
    Ok(())
}

/// Flags of `ecfd bench-kernel` (parsed separately from [`Args`]:
/// `--seeds` is a count here, not a range).
#[derive(Debug)]
struct BenchArgs {
    seeds: u64,
    out: Option<String>,
    micro_out: Option<String>,
    check: Option<String>,
    threshold: f64,
}

fn parse_bench_args(argv: &[String]) -> Result<BenchArgs, String> {
    let mut a = BenchArgs {
        seeds: 1000,
        out: None,
        micro_out: None,
        check: None,
        threshold: 25.0,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut take = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--seeds" => {
                a.seeds = take()?.parse().map_err(|e| format!("--seeds: {e}"))?;
                if a.seeds == 0 {
                    return Err("--seeds must be at least 1".into());
                }
            }
            "--out" => a.out = Some(take()?.clone()),
            "--micro-out" => a.micro_out = Some(take()?.clone()),
            "--check" => a.check = Some(take()?.clone()),
            "--threshold" => {
                a.threshold = take()?.parse().map_err(|e| format!("--threshold: {e}"))?;
                if !(0.0..=100.0).contains(&a.threshold) {
                    return Err("--threshold must be a percentage in 0..=100".into());
                }
            }
            other => return Err(format!("unknown bench-kernel flag {other}")),
        }
    }
    Ok(a)
}

/// Run the kernel throughput benchmark plus the microbenchmark suite,
/// optionally writing both JSON files and gating against a committed
/// baseline (the CI perf-smoke job runs this with `--check`).
fn cmd_bench_kernel(rest: &[String]) -> Result<(), String> {
    let a = parse_bench_args(rest)?;
    println!("bench-kernel: e8 sweep over {} seeds …", a.seeds);
    let bench = fd_bench::campaign::kernel_bench(a.seeds);
    let eps = bench
        .field("events_per_sec")
        .as_f64()
        .ok_or("kernel bench produced no events_per_sec")?;
    println!(
        "kernel: {} events in {:.3}s — {:.0} events/s (queue {}, jobs 1; p50 {}ns p99 {}ns per seed)",
        bench.field("events").as_u64().unwrap_or(0),
        bench.field("wall_ns").as_u64().unwrap_or(0) as f64 / 1e9,
        eps,
        bench.field("queue_impl").as_str().unwrap_or("?"),
        bench.field("seed_wall_p50_ns").as_u64().unwrap_or(0),
        bench.field("seed_wall_p99_ns").as_u64().unwrap_or(0),
    );
    if let Some(ape) = bench.field("allocs_per_event").as_f64() {
        println!("kernel: {ape:.2} heap allocations per event");
    }
    let micro = fd_bench::micro::micro_bench();
    if let serde::Value::Arr(rows) = micro.field("entries") {
        for row in rows {
            println!(
                "micro: {:<28} {:>8.1} ns/op  ({:.0} ops/s)",
                row.field("id").as_str().unwrap_or("?"),
                row.field("ns_per_op").as_f64().unwrap_or(0.0),
                row.field("ops_per_sec").as_f64().unwrap_or(0.0),
            );
        }
    }
    if let Some(path) = &a.out {
        write_json(path, &bench)?;
        println!("kernel json: {path}");
        let micro_path = a.micro_out.clone().unwrap_or_else(|| {
            std::path::Path::new(path)
                .with_file_name("BENCH_micro.json")
                .display()
                .to_string()
        });
        write_json(&micro_path, &micro)?;
        println!("micro json: {micro_path}");
    } else if let Some(micro_path) = &a.micro_out {
        write_json(micro_path, &micro)?;
        println!("micro json: {micro_path}");
    }
    if let Some(baseline_path) = &a.check {
        let text =
            std::fs::read_to_string(baseline_path).map_err(|e| format!("{baseline_path}: {e}"))?;
        let baseline: serde::Value =
            serde_json::from_str(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
        let base_eps = baseline
            .field("events_per_sec")
            .as_f64()
            .ok_or_else(|| format!("{baseline_path}: no events_per_sec field"))?;
        let floor = base_eps * (1.0 - a.threshold / 100.0);
        if eps < floor {
            return Err(format!(
                "kernel regression: {eps:.0} events/s is more than {}% below the \
                 baseline {base_eps:.0} (floor {floor:.0}) from {baseline_path}",
                a.threshold
            ));
        }
        println!(
            "check: {eps:.0} events/s vs baseline {base_eps:.0} — within {}% ✓",
            a.threshold
        );
    }
    Ok(())
}

/// Flags of `ecfd bench-scale`.
#[derive(Debug)]
struct ScaleArgs {
    sizes: Vec<usize>,
    seeds: u64,
    out: Option<String>,
    check: Option<String>,
    threshold: f64,
}

fn parse_scale_args(argv: &[String]) -> Result<ScaleArgs, String> {
    let mut a = ScaleArgs {
        sizes: Vec::new(),
        seeds: 4,
        out: None,
        check: None,
        threshold: 25.0,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut take = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--n" => {
                let n: usize = take()?.parse().map_err(|e| format!("--n: {e}"))?;
                if n == 0 || n > fd_core::MAX_PROCESSES {
                    return Err(format!("--n must be in 1..={}", fd_core::MAX_PROCESSES));
                }
                a.sizes.push(n);
            }
            "--seeds" => {
                a.seeds = take()?.parse().map_err(|e| format!("--seeds: {e}"))?;
                if a.seeds == 0 {
                    return Err("--seeds must be at least 1".into());
                }
            }
            "--out" => a.out = Some(take()?.clone()),
            "--check" => a.check = Some(take()?.clone()),
            "--threshold" => {
                a.threshold = take()?.parse().map_err(|e| format!("--threshold: {e}"))?;
                if !(0.0..=100.0).contains(&a.threshold) {
                    return Err("--threshold must be a percentage in 0..=100".into());
                }
            }
            other => return Err(format!("unknown bench-scale flag {other}")),
        }
    }
    if a.sizes.is_empty() {
        a.sizes = fd_bench::scale::SCALE_SIZES.to_vec();
    }
    Ok(a)
}

/// Run the large-n scale benchmark (heartbeat / ring / vCube at
/// n = 64…4096, stable and lossy nets), optionally writing
/// `BENCH_scale.json` and gating against a committed baseline. The gate
/// checks per-cell throughput within `--threshold` percent *and* — for
/// cells run with the baseline's seed count — exact observation-digest
/// equality, so behavioral drift at scale fails even when it is fast.
fn cmd_bench_scale(rest: &[String]) -> Result<(), String> {
    let a = parse_scale_args(rest)?;
    println!(
        "bench-scale: sizes {:?}, {} base seeds per cell …",
        a.sizes, a.seeds
    );
    let bench = fd_bench::scale::scale_bench(&a.sizes, a.seeds);
    let serde::Value::Arr(cells) = bench.field("cells") else {
        return Err("scale bench produced no cells".into());
    };
    for c in cells {
        println!(
            "{:<10} n={:<5} {:<7} {:>12} events in {:>7.3}s — {:>9.0} events/s ({} msgs, digest {})",
            c.field("class").as_str().unwrap_or("?"),
            c.field("n").as_u64().unwrap_or(0),
            c.field("net").as_str().unwrap_or("?"),
            c.field("events").as_u64().unwrap_or(0),
            c.field("wall_ns").as_u64().unwrap_or(0) as f64 / 1e9,
            c.field("events_per_sec").as_f64().unwrap_or(0.0),
            c.field("messages").as_u64().unwrap_or(0),
            c.field("digest").as_str().unwrap_or("?"),
        );
        if let Some(ape) = c.field("allocs_per_event").as_f64() {
            println!("{:<10} {ape:.2} heap allocations per event", "");
        }
    }
    if let Some(path) = &a.out {
        write_json(path, &bench)?;
        println!("scale json: {path}");
    }
    if let Some(baseline_path) = &a.check {
        let text =
            std::fs::read_to_string(baseline_path).map_err(|e| format!("{baseline_path}: {e}"))?;
        let baseline: serde::Value =
            serde_json::from_str(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
        let serde::Value::Arr(base_cells) = baseline.field("cells") else {
            return Err(format!("{baseline_path}: no cells array"));
        };
        let mut compared = 0usize;
        let mut failures = Vec::new();
        for c in cells {
            let key = |v: &serde::Value| {
                (
                    v.field("class").as_str().unwrap_or("?").to_string(),
                    v.field("n").as_u64().unwrap_or(0),
                    v.field("net").as_str().unwrap_or("?").to_string(),
                )
            };
            let Some(b) = base_cells.iter().find(|b| key(b) == key(c)) else {
                continue; // cell not in the baseline (different --n set)
            };
            compared += 1;
            let (class, n, net) = key(c);
            let eps = c.field("events_per_sec").as_f64().unwrap_or(0.0);
            let base_eps = b.field("events_per_sec").as_f64().unwrap_or(0.0);
            let floor = base_eps * (1.0 - a.threshold / 100.0);
            if eps < floor {
                failures.push(format!(
                    "{class} n={n} {net}: {eps:.0} events/s is more than {}% below the \
                     baseline {base_eps:.0} (floor {floor:.0})",
                    a.threshold
                ));
            }
            if c.field("seeds").as_u64() == b.field("seeds").as_u64()
                && c.field("digest").as_str() != b.field("digest").as_str()
            {
                failures.push(format!(
                    "{class} n={n} {net}: digest {} differs from baseline {} — \
                     nondeterminism or an unrecorded behavior change (regenerate \
                     with --out {baseline_path} if intentional)",
                    c.field("digest").as_str().unwrap_or("?"),
                    b.field("digest").as_str().unwrap_or("?"),
                ));
            }
        }
        if compared == 0 {
            return Err(format!(
                "{baseline_path}: no overlapping cells with this sweep — nothing checked"
            ));
        }
        if !failures.is_empty() {
            return Err(format!(
                "scale regression ({} of {compared} cells):\n  {}",
                failures.len(),
                failures.join("\n  ")
            ));
        }
        println!(
            "check: {compared} cells within {}% of {baseline_path}, digests match ✓",
            a.threshold
        );
    }
    Ok(())
}

/// Run the replicated-KV serving-stack benchmark: every detector class
/// over N seeds of the standard crash/restart plan, reporting commit
/// latency, failover blackout, and catch-up volume (`BENCH_kv.json`).
fn cmd_kv_bench(rest: &[String]) -> Result<(), String> {
    let mut seeds = 200u64;
    let mut out: Option<String> = None;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut take = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--seeds" => {
                seeds = take()?.parse().map_err(|e| format!("--seeds: {e}"))?;
                if seeds == 0 {
                    return Err("--seeds must be at least 1".into());
                }
            }
            "--out" => out = Some(take()?.clone()),
            other => return Err(format!("unknown kv-bench flag {other}")),
        }
    }
    println!("kv-bench: standard crash/restart plan, {seeds} seeds per detector class …");
    let bench = fd_kv::kv_bench(seeds);
    if let serde::Value::Obj(detectors) = bench.field("detectors") {
        for (key, d) in detectors {
            let commit = d.field("commit_us");
            let blackout = d.field("blackout_us");
            println!(
                "{key:<14} commit p50 {:>7}us p99 {:>7}us p99.9 {:>7}us | blackout p50 {:>7}us p99 {:>7}us | violations {}",
                commit.field("p50").as_u64().unwrap_or(0),
                commit.field("p99").as_u64().unwrap_or(0),
                commit.field("p999").as_u64().unwrap_or(0),
                blackout.field("p50").as_u64().unwrap_or(0),
                blackout.field("p99").as_u64().unwrap_or(0),
                d.field("violations").as_u64().unwrap_or(0),
            );
        }
    }
    if let Some(path) = &out {
        write_json(path, &bench)?;
        println!("kv json: {path}");
    }
    Ok(())
}

/// Flags of `ecfd lint` (parsed separately from [`Args`]).
#[derive(Debug, PartialEq)]
struct LintArgs {
    format: LintFormat,
    deny_warnings: bool,
    rules: Vec<String>,
    root: Option<String>,
    graph_out: Option<String>,
    graph_format: fd_lint::GraphFormat,
}

#[derive(Debug, PartialEq, Eq)]
enum LintFormat {
    Human,
    Json,
}

fn parse_lint_args(argv: &[String]) -> Result<LintArgs, String> {
    let mut a = LintArgs {
        format: LintFormat::Human,
        deny_warnings: false,
        rules: Vec::new(),
        root: None,
        graph_out: None,
        graph_format: fd_lint::GraphFormat::Json,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut take = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--format" => {
                a.format = match take()?.as_str() {
                    "human" => LintFormat::Human,
                    "json" => LintFormat::Json,
                    other => return Err(format!("--format must be human or json, got {other}")),
                }
            }
            "--deny-warnings" => a.deny_warnings = true,
            "--rule" => a.rules.push(take()?.clone()),
            "--root" => a.root = Some(take()?.clone()),
            "--graph-out" => a.graph_out = Some(take()?.clone()),
            "--graph-format" => {
                a.graph_format = match take()?.as_str() {
                    "json" => fd_lint::GraphFormat::Json,
                    "dot" => fd_lint::GraphFormat::Dot,
                    other => {
                        return Err(format!("--graph-format must be json or dot, got {other}"))
                    }
                }
            }
            other => return Err(format!("unknown lint flag {other}")),
        }
    }
    Ok(a)
}

/// Run the determinism analyzer over the workspace. Returns the process
/// exit code directly because, unlike the other subcommands, "findings
/// exist" (1) and "the linter itself failed" (2) must stay distinct.
fn cmd_lint(rest: &[String]) -> ExitCode {
    let a = match parse_lint_args(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let opts = fd_lint::Options { rules: a.rules };
    let root = match &a.root {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
            match fd_lint::find_workspace_root(&cwd) {
                Ok(root) => root,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let report = match fd_lint::lint_workspace(&root, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &a.graph_out {
        let graph = match fd_lint::dump_graph(&root, a.graph_format) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(path, graph) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::from(2);
        }
    }
    match a.format {
        LintFormat::Human => print!("{}", report.render_human()),
        LintFormat::Json => println!("{}", report.render_json()),
    }
    ExitCode::from(report.exit_code(a.deny_warnings))
}

fn write_json(path: &str, v: &serde::Value) -> Result<(), String> {
    let json = serde_json::to_string_pretty(v).map_err(|e| e.to_string())?;
    std::fs::write(path, json + "\n").map_err(|e| format!("{path}: {e}"))
}

fn cmd_classes() {
    println!("failure-detector classes (Fig. 1 + Ω + the paper's ◇C):\n");
    for class in FdClass::ALL {
        let comp = class
            .completeness()
            .map_or("-".into(), |c| format!("{c:?}"));
        let acc = class.accuracy().map_or("-".into(), |a| format!("{a:?}"));
        let leader = if class.has_leader() { "yes" } else { "no" };
        println!("  {class:<3}  completeness={comp:<7} accuracy={acc:<14} leader-output={leader}");
    }
    println!("\nreducibility (can the row be built from ◇C?):");
    for class in FdClass::ALL {
        use fd_core::SystemModel::*;
        let asy = class.implementable_from(FdClass::EventuallyConsistent, Asynchronous);
        let psy = class.implementable_from(FdClass::EventuallyConsistent, PartiallySynchronous);
        println!("  {class:<3}  async={asy:<5}  partial-synchrony={psy}");
    }
}

#[derive(Debug)]
struct McArgs {
    detector: Option<String>,
    protocol: Option<String>,
    all: bool,
    n: usize,
    horizon_ms: u64,
    cfg: fd_mc::McConfig,
    por_baseline: bool,
    witness_dir: String,
    json: Option<String>,
    replay: Option<String>,
}

fn parse_mc_args(argv: &[String]) -> Result<McArgs, String> {
    let mut a = McArgs {
        detector: None,
        protocol: None,
        all: false,
        n: 3,
        horizon_ms: 300,
        cfg: fd_mc::McConfig {
            depth: 6,
            ..fd_mc::McConfig::default()
        },
        por_baseline: false,
        witness_dir: "target/mc-witnesses".into(),
        json: None,
        replay: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut take = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--detector" => a.detector = Some(take()?.clone()),
            "--protocol" => a.protocol = Some(take()?.clone()),
            "--all" => a.all = true,
            "--n" => a.n = take()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--horizon-ms" => {
                a.horizon_ms = take()?.parse().map_err(|e| format!("--horizon-ms: {e}"))?
            }
            "--depth" => a.cfg.depth = take()?.parse().map_err(|e| format!("--depth: {e}"))?,
            "--crashes" => {
                a.cfg.crashes = take()?.parse().map_err(|e| format!("--crashes: {e}"))?
            }
            "--drops" => a.cfg.drops = take()?.parse().map_err(|e| format!("--drops: {e}"))?,
            "--crash-window-ms" => {
                let ms: u64 = take()?
                    .parse()
                    .map_err(|e| format!("--crash-window-ms: {e}"))?;
                a.cfg.crash_window = Time::from_millis(ms);
            }
            "--crash-grid-ms" => {
                let ms: u64 = take()?
                    .parse()
                    .map_err(|e| format!("--crash-grid-ms: {e}"))?;
                if ms == 0 {
                    return Err("--crash-grid-ms must be at least 1".into());
                }
                a.cfg.crash_grid = SimDuration::from_millis(ms);
            }
            "--max-runs" => {
                a.cfg.max_runs = take()?.parse().map_err(|e| format!("--max-runs: {e}"))?
            }
            "--no-por" => a.cfg.por = false,
            "--no-dedup" => a.cfg.dedup = false,
            "--por-baseline" => a.por_baseline = true,
            "--witness-dir" => a.witness_dir = take()?.clone(),
            "--json" => a.json = Some(take()?.clone()),
            "--replay" => a.replay = Some(take()?.clone()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if a.n == 0 || a.n > fd_core::MAX_PROCESSES {
        return Err(format!("--n must be in 1..={}", fd_core::MAX_PROCESSES));
    }
    if !a.all && a.detector.is_none() && a.protocol.is_none() {
        return Err("pick a target: --detector, --protocol, or --all".into());
    }
    Ok(a)
}

/// The targets an `ecfd mc` invocation explores, in order.
fn mc_targets(a: &McArgs) -> Result<Vec<fd_mc::McTarget>, String> {
    use fd_bench::mc::{detector_kind, detector_target, protocol_target, McProtocol};
    let horizon = Time::from_millis(a.horizon_ms);
    let mut out = Vec::new();
    if a.all {
        for kind in fd_chaos::DetectorKind::ALL {
            out.push(detector_target(kind, a.n, horizon));
        }
        for proto in McProtocol::ALL {
            out.push(protocol_target(proto, a.n, horizon));
        }
        return Ok(out);
    }
    if let Some(name) = &a.detector {
        let kind = detector_kind(name).ok_or_else(|| format!("--detector: unknown kind {name}"))?;
        out.push(detector_target(kind, a.n, horizon));
    }
    if let Some(name) = &a.protocol {
        let proto = McProtocol::parse(name)
            .ok_or_else(|| format!("--protocol: unknown protocol {name}"))?;
        out.push(protocol_target(proto, a.n, horizon));
    }
    Ok(out)
}

fn cmd_mc_replay(a: &McArgs, path: &str) -> Result<bool, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let w = fd_mc::Witness::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    let rebuilt = McArgs {
        detector: a.detector.clone(),
        protocol: a.protocol.clone(),
        all: false,
        n: w.n,
        horizon_ms: 0, // overwritten with the witness's horizon below
        cfg: a.cfg.clone(),
        por_baseline: false,
        witness_dir: a.witness_dir.clone(),
        json: None,
        replay: None,
    };
    let mut targets = mc_targets(&rebuilt)?;
    let mut target = targets.remove(0);
    target.horizon = w.horizon;
    if target.name != w.target {
        eprintln!(
            "warning: witness was recorded on {:?}, replaying on {:?}",
            w.target, target.name
        );
    }
    let outcome = fd_mc::replay_witness(&target, &a.cfg, &w);
    println!(
        "replay {}: property {} — digest {:#018x} ({}), violation {}",
        w.target,
        w.property,
        outcome.trace_digest,
        if outcome.reproduced {
            "reproduced byte-identically"
        } else {
            "DIVERGED from witness"
        },
        if outcome.violated {
            "reproduced"
        } else {
            "NOT reproduced"
        },
    );
    if let Some(d) = &outcome.detail {
        println!("  {d}");
    }
    Ok(outcome.reproduced && outcome.violated)
}

/// One target's exploration, timed, with the optional POR-off baseline.
#[derive(serde::Serialize)]
struct McCell {
    report: fd_mc::McReport,
    wall_ms: u64,
    baseline_runs: Option<usize>,
}

fn cmd_mc(rest: &[String]) -> ExitCode {
    let a = match parse_mc_args(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &a.replay {
        if a.all || (a.detector.is_some() == a.protocol.is_some()) {
            eprintln!("error: --replay wants exactly one of --detector / --protocol");
            return ExitCode::from(2);
        }
        return match cmd_mc_replay(&a, path) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }
    let targets = match mc_targets(&a) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "mc: n={} horizon={}ms depth={} crashes={} drops={} por={} dedup={}",
        a.n, a.horizon_ms, a.cfg.depth, a.cfg.crashes, a.cfg.drops, a.cfg.por, a.cfg.dedup
    );
    let mut cells = Vec::new();
    let mut any_violation = false;
    let mut any_truncated = false;
    for target in &targets {
        // fd-lint: allow(ND002, reason = "wall-clock timing for the mc report; exploration results, witnesses, and digests never read it")
        let start = std::time::Instant::now();
        let report = fd_mc::explore(target, &a.cfg);
        let wall_ms = start.elapsed().as_millis() as u64;
        let baseline_runs = if a.por_baseline {
            let off = fd_mc::explore(
                target,
                &fd_mc::McConfig {
                    por: false,
                    ..a.cfg.clone()
                },
            );
            Some(off.stats.runs)
        } else {
            None
        };
        let s = &report.stats;
        print!(
            "  {:<12} runs={:<7} schedules={:<4} states={:<6} cps={:<7} sleep_skips={:<7} \
visited_hits={:<6} capped={:<6} wall={:>6}ms {}",
            report.target,
            s.runs,
            s.schedules,
            s.distinct_states,
            s.choice_points,
            s.sleep_skips,
            s.visited_hits,
            s.depth_capped_runs,
            wall_ms,
            if report.complete {
                "exhaustive"
            } else {
                "TRUNCATED"
            },
        );
        if let Some(b) = baseline_runs {
            let factor = b as f64 / s.runs.max(1) as f64;
            print!(" por-reduction={factor:.2}x");
        }
        println!();
        if !report.complete {
            any_truncated = true;
        }
        if !report.violations.is_empty() {
            any_violation = true;
            if let Err(e) = std::fs::create_dir_all(&a.witness_dir) {
                eprintln!("error: {}: {e}", a.witness_dir);
                return ExitCode::from(2);
            }
            for v in &report.violations {
                let file = format!(
                    "{}/{}-{}.json",
                    a.witness_dir,
                    report.target,
                    v.property.replace('.', "-")
                );
                println!("    VIOLATION {}: {}", v.property, v.detail);
                match std::fs::write(&file, v.witness.to_json() + "\n") {
                    Ok(()) => println!("    witness: {file}"),
                    Err(e) => {
                        eprintln!("error: {file}: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
        }
        cells.push(McCell {
            report,
            wall_ms,
            baseline_runs,
        });
    }
    if let Some(path) = &a.json {
        let json = match serde_json::to_string_pretty(&cells) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("error: serializing report: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(path, json + "\n") {
            eprintln!("error: {path}: {e}");
            return ExitCode::from(2);
        }
        println!("report: {path}");
    }
    if any_violation {
        println!("mc: violations found — witnesses written");
        ExitCode::FAILURE
    } else if any_truncated {
        println!("mc: clean but truncated (raise --max-runs for an exhaustive verdict)");
        ExitCode::SUCCESS
    } else {
        println!("mc: exhaustive within budgets, no violations");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        print!("{HELP}");
        return ExitCode::FAILURE;
    };
    if matches!(cmd.as_str(), "help" | "--help" | "-h") {
        print!("{HELP}");
        return ExitCode::SUCCESS;
    }
    if cmd == "classes" {
        cmd_classes();
        return ExitCode::SUCCESS;
    }
    if cmd == "bench-kernel" {
        return match cmd_bench_kernel(rest) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "bench-scale" {
        return match cmd_bench_scale(rest) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "kv-bench" {
        return match cmd_kv_bench(rest) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "lint" {
        return cmd_lint(rest);
    }
    if cmd == "mc" {
        return cmd_mc(rest);
    }
    if cmd == "obs-report" {
        return match cmd_obs_report(rest) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let args = match parse_args(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{HELP}");
            return ExitCode::FAILURE;
        }
    };
    if cmd == "campaign" {
        return cmd_campaign(&args);
    }
    let result = match cmd.as_str() {
        "consensus" => cmd_consensus(&args),
        "detector" => cmd_detector(&args),
        "log" => cmd_log(&args),
        other => Err(format!("unknown command {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        let argv: Vec<String> = s.split_whitespace().map(String::from).collect();
        parse_args(&argv)
    }

    fn parse_lint(s: &str) -> Result<LintArgs, String> {
        let argv: Vec<String> = s.split_whitespace().map(String::from).collect();
        parse_lint_args(&argv)
    }

    #[test]
    fn lint_defaults() {
        let a = parse_lint("").unwrap();
        assert_eq!(a.format, LintFormat::Human);
        assert!(!a.deny_warnings);
        assert!(a.rules.is_empty());
        assert!(a.root.is_none());
        assert!(a.graph_out.is_none());
        assert_eq!(a.graph_format, fd_lint::GraphFormat::Json);
    }

    #[test]
    fn lint_full_flag_set() {
        let a = parse_lint(
            "--format json --deny-warnings --rule ND001 --rule UH002 --root /x \
             --graph-out g.dot --graph-format dot",
        )
        .unwrap();
        assert_eq!(a.format, LintFormat::Json);
        assert!(a.deny_warnings);
        assert_eq!(a.rules, vec!["ND001".to_string(), "UH002".to_string()]);
        assert_eq!(a.root.as_deref(), Some("/x"));
        assert_eq!(a.graph_out.as_deref(), Some("g.dot"));
        assert_eq!(a.graph_format, fd_lint::GraphFormat::Dot);
    }

    #[test]
    fn lint_rejects_bad_flags() {
        assert!(parse_lint("--format yaml").is_err());
        assert!(parse_lint("--rule").is_err());
        assert!(parse_lint("--frmt json").is_err());
        assert!(parse_lint("--graph-format svg").is_err());
        assert!(parse_lint("--graph-out").is_err());
    }

    #[test]
    fn lint_unknown_rule_id_lists_valid_ones() {
        // Flag parsing accepts any ID; the registry check rejects it
        // with the full catalog (the CLI surfaces this as exit 2).
        let err = fd_lint::validate_rule_ids(&["ND999".to_string()]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("ND999"), "{msg}");
        assert!(msg.contains("ND001") && msg.contains("SUP001"), "{msg}");
    }

    #[test]
    fn defaults() {
        let a = parse("").unwrap();
        assert_eq!(a.n, 5);
        assert_eq!(a.seed, 42);
        assert_eq!(a.protocol, "ec");
        assert!(a.crashes.is_empty());
    }

    #[test]
    fn full_flag_set() {
        let a = parse("--n 7 --protocol ct --seed 9 --crash 2@50 --crash 3@75 --timeline").unwrap();
        assert_eq!(a.n, 7);
        assert_eq!(a.protocol, "ct");
        assert_eq!(a.seed, 9);
        assert_eq!(a.crashes, vec![(2, 50), (3, 75)]);
        assert!(a.timeline);
    }

    #[test]
    fn campaign_flags() {
        let a = parse("--scenario e8 --seeds 10..1000 --jobs 4 --artifact-dir /tmp/art").unwrap();
        assert_eq!(a.scenario, "e8");
        assert_eq!(a.seeds, (10, 1000));
        assert_eq!(a.jobs, 4);
        assert_eq!(a.artifact_dir, "/tmp/art");
        assert!(a.replay.is_none());
        let a = parse("--replay target/campaign/x.json --shrink").unwrap();
        assert_eq!(a.replay.as_deref(), Some("target/campaign/x.json"));
        assert!(a.shrink);
    }

    #[test]
    fn bad_campaign_flags_rejected() {
        assert!(parse("--seeds 5").is_err(), "not a range");
        assert!(parse("--seeds a..b").is_err(), "not numbers");
        assert!(parse("--seeds 9..2").is_err(), "reversed range");
        let e = parse("--seeds 3..3").unwrap_err();
        assert!(
            e.contains("empty range") && e.contains("B > A"),
            "empty half-open range must be rejected with a clear message, got: {e}"
        );
        assert!(parse("--jobs 0").is_err());
        assert!(parse("--jobs many").is_err());
    }

    #[test]
    fn metrics_out_flag_parses() {
        let a = parse("--scenario e8 --seeds 0..8 --metrics-out /tmp/m.jsonl").unwrap();
        assert_eq!(a.metrics_out.as_deref(), Some("/tmp/m.jsonl"));
        assert!(parse("--metrics-out").is_err(), "needs a value");
    }

    #[test]
    fn bad_crash_spec_rejected() {
        assert!(parse("--crash nope").is_err());
        assert!(parse("--crash 9@10").is_err(), "out of range for default n");
        assert!(parse("--n 0").is_err());
        assert!(parse("--mystery 1").is_err());
    }
}
