//! # ecfd — Eventually Consistent Failure Detectors
//!
//! A complete, executable reproduction of *"Eventually consistent failure
//! detectors"* (M. Larrea, A. Fernández, S. Arévalo): the ◇C failure
//! detector class, its relationships to ◇P/◇S/◇W/Ω, the ◇C→◇P
//! transformation under partial synchrony (Fig. 2 / Theorem 1), and the
//! leader-based Uniform Consensus algorithm (Figs. 3–4 / Theorem 2) with
//! the Chandra–Toueg and Mostefaoui–Raynal baselines it is compared
//! against in §5.4.
//!
//! This crate is an umbrella: it re-exports the workspace members and a
//! [`prelude`]. A complete consensus run in a dozen lines:
//!
//! ```
//! use ecfd::prelude::*;
//!
//! let n = 5;
//! let scenario = Scenario {
//!     seed: 42,
//!     crashes: vec![(ProcessId(3), Time::from_millis(25))],
//!     proposals: vec![700, 701, 702, 703, 704],
//!     horizon: Time::from_secs(10),
//! };
//! let result = run_scenario(default_net(n), &scenario, ec_node_hb);
//! assert!(result.all_decided);
//! ConsensusRun::new(&result.trace, n).check_all().unwrap();
//! assert_eq!(result.max_decision_round(), Some(1));
//! ```
//!
//! More in `examples/` — start with `cargo run --example quickstart`.
//!
//! ## Workspace map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`sim`] | deterministic discrete-event simulator (processes, links, crashes, traces) |
//! | [`core`] | process sets, detector classes, query traits, property checkers |
//! | [`detectors`] | heartbeat ◇P, ring ◇S, candidate Ω/◇C, ◇C→◇P, ◇W→◇S, fused stack |
//! | [`broadcast`] | Reliable / Uniform Reliable Broadcast |
//! | [`consensus`] | ◇C consensus + CT ◇S + MR Ω protocols, nodes, scenario harness |
//! | [`runtime`] | threaded wall-clock executor for the same actors |
//! | [`campaign`] | parallel seed sweeps, property monitors, repro artifacts, shrinking |
//! | [`chaos`] | declarative fault schedules (partitions, churn, mangling) compiled to kernel interventions |
//! | [`kv`] | durable replicated KV service on the consensus log: WAL, snapshots, crash catch-up |
//! | [`obs`] | counters/gauges/histograms, scoped spans, JSONL metrics export |
//! | [`bench`] | experiment harness regenerating the paper's tables (incl. campaign scenarios) |
//! | [`mc`] | bounded exhaustive schedule exploration (model checking) with replayable witnesses |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use fd_bench as bench;
pub use fd_broadcast as broadcast;
pub use fd_campaign as campaign;
pub use fd_chaos as chaos;
pub use fd_consensus as consensus;
pub use fd_core as core;
pub use fd_detectors as detectors;
pub use fd_kv as kv;
pub use fd_mc as mc;
pub use fd_obs as obs;
pub use fd_runtime as runtime;
pub use fd_sim as sim;

/// One-stop imports for examples and applications.
pub mod prelude {
    pub use fd_campaign::{Campaign, CampaignReport, RunPlan};
    pub use fd_consensus::{
        ct_node_hb, default_net, ec_node_hb, ec_node_leader, mr_node_leader, run_scenario,
        scripted_node, ConsensusConfig, ConsensusNode, CtConsensus, EcConsensus, MrConsensus,
        RoundProtocol, RunResult, Scenario,
    };
    pub use fd_core::prelude::*;
    pub use fd_detectors::prelude::*;
    pub use fd_sim::prelude::*;
}
