//! Ablations of the design decisions DESIGN.md marks ⚗: show that the
//! mechanisms the paper's proofs rely on are *load-bearing* — removing
//! them makes the property checkers fail, on real runs.

use ecfd::prelude::*;
use fd_core::Standalone;
use fd_detectors::{HeartbeatConfig, HeartbeatDetector};
use fd_sim::DelayDist;

/// A network whose delays spike above any *fixed* timeout forever:
/// mostly 1–3 ms, but 6% of messages take up to 120 ms.
fn spiky_net(n: usize) -> NetworkConfig {
    NetworkConfig::new(n).with_default(LinkModel::Reliable {
        delay: DelayDist::Spiky {
            min: SimDuration::from_millis(1),
            max: SimDuration::from_millis(3),
            spike_prob: 0.06,
            spike_max: SimDuration::from_millis(120),
        },
    })
}

fn run_heartbeat(cfg: HeartbeatConfig, seed: u64) -> (fd_sim::Trace, Time, u64) {
    let n = 4;
    let mut w = WorldBuilder::new(spiky_net(n))
        .seed(seed)
        .build(move |pid, n| Standalone(HeartbeatDetector::new(pid, n, cfg.clone())));
    let end = Time::from_secs(20);
    w.run_until_time(end);
    let mistakes: u64 = (0..n).map(|i| w.actor(ProcessId(i)).mistakes()).sum();
    let (trace, _) = w.into_results();
    (trace, end, mistakes)
}

#[test]
fn adaptive_timeouts_are_load_bearing() {
    // DESIGN ⚗ #4 / Theorem 1's mechanism. A *short, fixed* timeout under
    // heavy-tailed delays false-suspects forever — eventual strong
    // accuracy fails; the adaptive variant absorbs the tail and passes.
    let n = 4;

    // Ablated: 20 ms timeout that never grows, under 120 ms spikes.
    let fixed = HeartbeatConfig {
        initial_timeout: SimDuration::from_millis(20),
        timeout_increment: SimDuration::from_ticks(1), // effectively frozen
        ..HeartbeatConfig::default()
    };
    let (trace, end, mistakes_fixed) = run_heartbeat(fixed, 0xAB1);
    let run = FdRun::new(&trace, n, end);
    assert!(
        run.check_stable_margin(SimDuration::from_secs(2)).is_err(),
        "a frozen timeout must keep flapping under heavy-tailed delays"
    );
    assert!(
        mistakes_fixed > 50,
        "expected persistent false suspicions, got {mistakes_fixed}"
    );

    // Intact: the same initial timeout with real additive adaptation.
    let adaptive = HeartbeatConfig {
        initial_timeout: SimDuration::from_millis(20),
        timeout_increment: SimDuration::from_millis(25),
        ..HeartbeatConfig::default()
    };
    let (trace, end, mistakes_adaptive) = run_heartbeat(adaptive, 0xAB1);
    let run = FdRun::new(&trace, n, end);
    run.check_class(FdClass::EventuallyPerfect).unwrap();
    run.check_stable_margin(SimDuration::from_secs(2)).unwrap();
    assert!(
        mistakes_adaptive < mistakes_fixed / 3,
        "adaptation must cut mistakes sharply: {mistakes_adaptive} vs {mistakes_fixed}"
    );
}

#[test]
fn run_length_matters_for_eventual_properties() {
    // DESIGN ⚗ #3. "Eventually" on a finite trace is only meaningful with
    // quiescence slack: a horizon cut right after a crash shows a
    // completeness violation (suspicions have not propagated yet), while
    // the same run with room to settle passes with a wide margin.
    let n = 4;
    let crash_at = Time::from_millis(500);
    let mk = || {
        WorldBuilder::new(default_net(n))
            .seed(0xAB2)
            .crash_at(ProcessId(2), crash_at)
            .build(|pid, n| Standalone(HeartbeatDetector::new(pid, n, HeartbeatConfig::default())))
    };

    // Horizon 5 ms after the crash: detection cannot have happened.
    let mut w = mk();
    let early = crash_at + SimDuration::from_millis(5);
    w.run_until_time(early);
    let (trace, _) = w.into_results();
    assert!(
        FdRun::new(&trace, n, early)
            .check_strong_completeness()
            .is_err(),
        "too-short horizons must be detectably inconclusive"
    );

    // Horizon with 2.4 s of slack: completeness holds and the output was
    // quiescent for a checkable margin.
    let mut w = mk();
    let late = Time::from_secs(3);
    w.run_until_time(late);
    let (trace, _) = w.into_results();
    let run = FdRun::new(&trace, n, late);
    run.check_class(FdClass::EventuallyPerfect).unwrap();
    run.check_stable_margin(SimDuration::from_secs(2)).unwrap();
}
