//! End-to-end tests of the campaign pipeline: parallel determinism on a
//! real experiment scenario, and the failure path (artifact → replay →
//! shrink) through the public registry the `ecfd campaign` subcommand
//! uses.

use ecfd::bench::campaign::scenario_by_name;
use ecfd::campaign::{replay, shrink, Artifact, Campaign};
use std::path::PathBuf;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn e8_seed_results_are_independent_of_job_count() {
    let scenario = scenario_by_name("e8").expect("e8 is registered");
    let serial = Campaign::new(scenario.as_ref(), 0..6).jobs(1).run();
    let parallel = Campaign::new(scenario.as_ref(), 0..6).jobs(4).run();
    // Same per-seed verdicts AND byte-identical traces (same digests),
    // whatever the worker count.
    assert_eq!(serial.results, parallel.results);
    assert_eq!(serial.passed(), 6, "E8 seeds are sound runs");
    assert!(
        parallel.latency_stats().is_some(),
        "consensus runs report decision latency"
    );
}

#[test]
fn e8_seed_results_are_independent_of_instrumentation() {
    // The fd-obs contract: metrics collection reads wall clocks, never
    // simulation state, so per-seed verdicts — including trace digests
    // and deterministic event counts — are byte-identical with the
    // registry on or off.
    let scenario = scenario_by_name("e8").expect("e8 is registered");
    let bare = Campaign::new(scenario.as_ref(), 0..6).jobs(2).run();
    let registry = ecfd::obs::Registry::new();
    let observed = Campaign::new(scenario.as_ref(), 0..6)
        .jobs(2)
        .observe(&registry)
        .run();
    assert_eq!(bare.results, observed.results);

    // The instrumented sweep actually recorded kernel activity, and the
    // lock-free counter agrees with the deterministic per-seed sum.
    assert_eq!(
        registry.counter("sim.events").get(),
        observed.total_events(),
        "registry event counter vs summed RunOutcome events"
    );
    assert!(registry.histogram("sim.callback_ns").count() > 0);
    assert_eq!(observed.timings.len(), 6, "one timing row per seed");
    let util = observed.worker_utilization().expect("non-empty sweep");
    assert!((0.0..=1.0).contains(&util));
}

/// External dashboards consume the `--metrics-out` jsonl by key name:
/// this pins the serialized names of the shrink counters to the fd-obs
/// registry entries, so a registry rename cannot silently orphan the
/// rows downstream tooling greps for.
#[test]
fn shrink_metrics_serialize_under_their_registered_keys() {
    let dir = scratch_dir("shrink-metrics");
    std::fs::create_dir_all(&dir).unwrap();
    let registry = ecfd::obs::Registry::new();
    registry
        .counter(ecfd::obs::keys::CAMPAIGN_SHRINK_STEPS)
        .add(3);
    registry
        .counter(ecfd::obs::keys::CAMPAIGN_SHRINK_ATTEMPTS)
        .add(17);
    let path = dir.join("metrics.jsonl");
    ecfd::obs::write_jsonl_file(&path, &registry.snapshot()).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("campaign.shrink_steps"));
    assert!(text.contains("campaign.shrink_attempts"));
}

#[test]
fn known_bad_scenario_artifact_replays_and_shrinks() {
    let scenario = scenario_by_name("blind").expect("blind is registered");
    let dir = scratch_dir("blind-artifacts");
    let report = Campaign::new(scenario.as_ref(), 7..9)
        .jobs(2)
        .artifact_dir(&dir)
        .run();
    assert_eq!(report.failed(), 2);
    assert_eq!(
        report.artifacts.len(),
        2,
        "every failing seed writes an artifact"
    );

    // Load one artifact back from disk, as `ecfd campaign --replay` would.
    let loaded = Artifact::load(&report.artifacts[0]).unwrap();
    assert_eq!(loaded.property, "fd.strong_completeness");
    let replayed = replay(scenario.as_ref(), &loaded).unwrap();
    assert!(
        replayed.reproduced(),
        "replay must reproduce the recorded violation"
    );
    assert!(
        replayed.digest_matches,
        "replay must regenerate the identical trace"
    );

    // Shrink: strictly simpler plan, violation preserved.
    let shrunk = shrink(scenario.as_ref(), &loaded).unwrap();
    assert!(
        shrunk.artifact.plan.crashes.len() < loaded.plan.crashes.len()
            || shrunk.artifact.plan.n() < loaded.plan.n(),
        "shrinker must remove a crash or a process"
    );
    let still = replay(scenario.as_ref(), &shrunk.artifact).unwrap();
    assert!(
        still.reproduced(),
        "the minimized counterexample must still fail"
    );
}
