//! Cross-crate checks of the §3 class relationships on *implemented*
//! detectors: each implementation satisfies its claimed class, the
//! constructions built on top inherit the right properties, and the
//! classes genuinely differ (negative checks).

use ecfd::prelude::*;
use fd_core::Standalone;
use fd_detectors::{
    FusedConfig, FusedDetector, HeartbeatConfig, HeartbeatDetector, LeaderConfig, LeaderDetector,
    RingConfig, RingDetector,
};
use fd_sim::Trace;

const N: usize = 6;

fn run_detector<A: fd_sim::Actor>(
    crashes: &[(usize, u64)],
    seed: u64,
    make: impl FnMut(ProcessId, usize) -> A,
) -> (Trace, Time) {
    let net = NetworkConfig::new(N).with_default(LinkModel::reliable_uniform(
        SimDuration::from_millis(1),
        SimDuration::from_millis(3),
    ));
    let mut b = WorldBuilder::new(net).seed(seed);
    for &(pid, at) in crashes {
        b = b.crash_at(ProcessId(pid), Time::from_millis(at));
    }
    let mut w = b.build(make);
    let end = Time::from_secs(5);
    w.run_until_time(end);
    (w.into_results().0, end)
}

#[test]
fn heartbeat_is_ep_hence_everything_below() {
    let (trace, end) = run_detector(&[(1, 100), (4, 200)], 1, |pid, n| {
        Standalone(LeaderByFirstNonSuspected::new(
            HeartbeatDetector::new(pid, n, HeartbeatConfig::default()),
            n,
        ))
    });
    let run = FdRun::new(&trace, N, end);
    // ◇P ⟹ ◇Q, ◇S, ◇W, and (with the §3 leader recipe) Ω and ◇C.
    for class in fd_core::FdClass::ALL {
        run.check_class(class)
            .unwrap_or_else(|v| panic!("{class}: {v}"));
    }
}

#[test]
fn ring_is_ep_quality_and_a_good_ec_base() {
    let (trace, end) = run_detector(&[(0, 150)], 2, |pid, n| {
        Standalone(LeaderByFirstNonSuspected::new(
            RingDetector::new(pid, n, RingConfig::default()),
            n,
        ))
    });
    let run = FdRun::new(&trace, N, end);
    run.check_class(FdClass::EventuallyPerfect).unwrap();
    run.check_class(FdClass::EventuallyConsistent).unwrap();
    // Accuracy is real: only the crashed process is suspected.
    for p in run.correct().iter() {
        assert_eq!(run.final_suspects(p).len(), 1);
    }
}

#[test]
fn leader_detector_is_ec_but_not_strongly_accurate() {
    let (trace, end) = run_detector(&[(0, 150)], 3, |pid, n| {
        Standalone(LeaderDetector::new(pid, n, LeaderConfig::default()))
    });
    let run = FdRun::new(&trace, N, end);
    run.check_class(FdClass::EventuallyConsistent).unwrap();
    run.check_class(FdClass::EventuallyStrong).unwrap();
    // The Ω-grade construction is NOT eventually strongly accurate:
    // correct processes other than the leader stay suspected — the §3
    // "very poor accuracy" remark, as a negative test.
    assert!(run.check_eventual_strong_accuracy().is_err());
    assert!(run.check_class(FdClass::EventuallyPerfect).is_err());
}

#[test]
fn fused_detector_is_both_ep_and_ec() {
    let (trace, end) = run_detector(&[(2, 120)], 4, |pid, n| {
        Standalone(FusedDetector::new(pid, n, FusedConfig::default()))
    });
    let run = FdRun::new(&trace, N, end);
    run.check_class(FdClass::EventuallyPerfect).unwrap();
    run.check_class(FdClass::EventuallyConsistent).unwrap();
}

#[test]
fn suspect_all_but_leader_matches_the_omega_to_ec_construction() {
    let (trace, end) = run_detector(&[(0, 100)], 5, |pid, n| {
        Standalone(SuspectAllButLeader::new(
            LeaderDetector::new(pid, n, LeaderConfig::default()),
            n,
        ))
    });
    let run = FdRun::new(&trace, N, end);
    run.check_class(FdClass::EventuallyConsistent).unwrap();
    for p in run.correct().iter() {
        assert_eq!(
            run.final_suspects(p).len(),
            N - 1,
            "Ω→◇C suspects all but the leader"
        );
    }
}

#[test]
fn reducibility_table_matches_what_the_implementations_exhibit() {
    use fd_core::{FdClass::*, SystemModel::*};
    // The implemented constructions are instances of the §3 relations the
    // classes module encodes; spot-check that the table agrees.
    assert!(EventuallyConsistent.implementable_from(EventuallyPerfect, Asynchronous)); // heartbeat → ◇C
    assert!(EventuallyConsistent.implementable_from(Omega, Asynchronous)); // suspect-all-but-leader
    assert!(EventuallyPerfect.implementable_from(EventuallyConsistent, PartiallySynchronous)); // Fig. 2
    assert!(!EventuallyPerfect.implementable_from(EventuallyConsistent, Asynchronous));
    // needs GST
}

#[test]
fn detectors_recover_from_a_healed_partition() {
    // A real burst partition (not probabilistic loss): p0 is cut off from
    // everyone in both directions for 400 ms, then the network heals.
    // The heartbeat detector must (a) suspect p0 during the partition and
    // (b) fully recover — eventual strong accuracy is about exactly this.
    use fd_detectors::{HeartbeatConfig, HeartbeatDetector};
    let n = 4;
    let healthy =
        LinkModel::reliable_uniform(SimDuration::from_millis(1), SimDuration::from_millis(3));
    let cut = LinkModel::partitioned_during(
        healthy.clone(),
        Time::from_millis(300),
        Time::from_millis(700),
    );
    let mut net = NetworkConfig::new(n).with_default(healthy);
    for i in 1..n {
        net = net
            .with_link(ProcessId(0), ProcessId(i), cut.clone())
            .with_link(ProcessId(i), ProcessId(0), cut.clone());
    }
    let mut w = WorldBuilder::new(net)
        .seed(0xC0FFEE)
        .build(|pid, n| Standalone(HeartbeatDetector::new(pid, n, HeartbeatConfig::default())));
    // Mid-partition: p0 must be suspected by the others (and vice versa).
    w.run_until_time(Time::from_millis(650));
    for i in 1..n {
        assert!(
            w.actor(ProcessId(i)).suspected().contains(ProcessId(0)),
            "p{i} must suspect the partitioned p0"
        );
    }
    assert_eq!(
        w.actor(ProcessId(0)).suspected().len(),
        n - 1,
        "p0 suspects everyone"
    );
    // After healing + timeout growth: full recovery, ◇P holds.
    let end = Time::from_secs(4);
    w.run_until_time(end);
    let (trace, _) = w.into_results();
    let run = FdRun::new(&trace, n, end);
    run.check_class(FdClass::EventuallyPerfect).unwrap();
    for i in 0..n {
        assert!(
            run.final_suspects(ProcessId(i)).is_empty(),
            "p{i} must fully recover"
        );
    }
}

#[test]
fn restricted_heartbeat_is_quasi_perfect() {
    // Each process monitors only its ring successor: weak completeness
    // (only the monitor suspects a crashed process) but still eventual
    // STRONG accuracy (adaptive timeouts stop all false suspicions) —
    // the ◇Q cell of Fig. 1, often forgotten between ◇P and ◇W.
    use fd_detectors::{HeartbeatConfig, HeartbeatDetector};
    let (trace, end) = run_detector(&[(2, 150)], 6, |pid, n| {
        Standalone(HeartbeatDetector::restricted(
            pid,
            n,
            HeartbeatConfig::default(),
            ProcessSet::singleton(pid.predecessor(n)),
            ProcessSet::singleton(pid.successor(n)),
        ))
    });
    let run = FdRun::new(&trace, N, end);
    run.check_class(FdClass::EventuallyQuasiPerfect).unwrap();
    run.check_class(FdClass::EventuallyWeak).unwrap();
    assert!(
        run.check_class(FdClass::EventuallyPerfect).is_err(),
        "not strongly complete"
    );
    assert!(run.check_class(FdClass::EventuallyStrong).is_err());
}
