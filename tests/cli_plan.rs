//! CLI contract of `ecfd campaign --plan`: a missing or malformed plan
//! file must exit with code 2 (setup never completed) and a diagnostic
//! naming the file, distinct from exit 1 (a sweep that ran and found
//! property violations). A valid plan must drive both the chaos and the
//! kv scenarios.

use std::path::PathBuf;
use std::process::Command;

fn ecfd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ecfd"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("cli_plan");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn missing_plan_file_exits_2_with_the_path() {
    let path = scratch("no-such-plan.json");
    let _ = std::fs::remove_file(&path);
    let out = ecfd()
        .args([
            "campaign",
            "--plan",
            path.to_str().unwrap(),
            "--seeds",
            "0..2",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "missing plan file must exit 2, got {:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no-such-plan.json"),
        "diagnostic must name the file: {stderr}"
    );
}

#[test]
fn malformed_plan_file_exits_2_with_a_parse_diagnostic() {
    let path = scratch("garbage.json");
    std::fs::write(&path, "{ this is not a chaos plan").unwrap();
    let out = ecfd()
        .args([
            "campaign",
            "--plan",
            path.to_str().unwrap(),
            "--seeds",
            "0..2",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "malformed plan file must exit 2\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("garbage.json") && stderr.contains("not a chaos plan"),
        "diagnostic must name the file and the parse failure: {stderr}"
    );
}

#[test]
fn valid_plan_drives_the_kv_scenario() {
    let path = scratch("standard.json");
    let plan = fd_kv::standard_plan(fd_chaos::DetectorKind::Heartbeat);
    std::fs::write(&path, serde_json::to_string_pretty(&plan).unwrap()).unwrap();
    let out = ecfd()
        .args([
            "campaign",
            "--plan",
            path.to_str().unwrap(),
            "--scenario",
            "kv",
            "--seeds",
            "0..2",
            "--jobs",
            "1",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean kv sweep under a fixed plan must exit 0\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn plan_rejects_non_chaos_non_kv_scenarios() {
    let path = scratch("standard-e8.json");
    let plan = fd_kv::standard_plan(fd_chaos::DetectorKind::Ring);
    std::fs::write(&path, serde_json::to_string_pretty(&plan).unwrap()).unwrap();
    let out = ecfd()
        .args([
            "campaign",
            "--plan",
            path.to_str().unwrap(),
            "--scenario",
            "e8",
            "--seeds",
            "0..2",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("chaos or kv"), "{stderr}");
}
