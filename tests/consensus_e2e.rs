//! Whole-stack consensus runs over unusual substrates: ring-based ◇C,
//! partially synchronous links, staggered proposals, larger systems.

use ecfd::prelude::*;
use fd_consensus::{ConsensusNode, EcConsensus};
use fd_detectors::{RingConfig, RingDetector};

type RingEcNode = ConsensusNode<LeaderByFirstNonSuspected<RingDetector>, EcConsensus>;

fn ring_ec_node(pid: ProcessId, n: usize) -> RingEcNode {
    ConsensusNode::new(
        pid,
        LeaderByFirstNonSuspected::new(RingDetector::new(pid, n, RingConfig::default()), n),
        EcConsensus::new(pid, n, ConsensusConfig::default()),
    )
}

fn check_all(r: &RunResult) {
    ConsensusRun::new(&r.trace, r.n).check_all().unwrap();
}

#[test]
fn ec_consensus_over_the_ring_detector() {
    // The §3 "no additional cost" ◇C base, driving the §5 algorithm.
    let n = 5;
    let sc = Scenario::failure_free(n, 71, Time::from_secs(10))
        .with_crash(ProcessId(2), Time::from_millis(60));
    let r = run_scenario(default_net(n), &sc, ring_ec_node);
    assert!(r.all_decided);
    check_all(&r);
}

#[test]
fn ec_consensus_under_partial_synchrony() {
    // Eventually timely links with a 200ms GST (no loss — the consensus
    // algorithm itself assumes reliable links; only timing misbehaves).
    let n = 5;
    let net = NetworkConfig::partially_synchronous(
        n,
        Time::from_millis(200),
        SimDuration::from_millis(4),
        SimDuration::from_millis(100),
        0.0,
    );
    let sc = Scenario::failure_free(n, 72, Time::from_secs(20));
    let r = run_scenario(net, &sc, ec_node_hb);
    assert!(r.all_decided);
    check_all(&r);
}

#[test]
fn staggered_proposals_still_terminate() {
    // p4 proposes 200ms after everyone else: rounds churn (its null
    // estimates keep coordinators unblocked) until it joins, or the rest
    // decide without it — either way all correct processes decide.
    let n = 5;
    let net = default_net(n);
    let mut builder = WorldBuilder::new(net).seed(73);
    builder = builder.max_events(50_000_000);
    let mut world = builder.build(ec_node_hb);
    for i in 0..4 {
        world.interact(ProcessId(i), move |node, ctx| {
            node.propose(ctx, 10 + i as u64)
        });
    }
    world.run_until_time(Time::from_millis(200));
    world.interact(ProcessId(4), |node, ctx| node.propose(ctx, 14));
    let decided = world.run_until(Time::from_secs(20), |w| {
        w.correct().iter().all(|&p| w.actor(p).decision().is_some())
    });
    assert!(decided, "staggered run failed to decide");
    let (trace, _) = world.into_results();
    ConsensusRun::new(&trace, n).check_all().unwrap();
}

#[test]
fn larger_system_with_maximal_failures() {
    // n = 11, f = 5 = ⌈n/2⌉ − 1 crashes (the limit of Theorem 2).
    let n = 11;
    let mut sc = Scenario::failure_free(n, 74, Time::from_secs(30));
    for (i, at) in [(1usize, 30u64), (3, 60), (5, 90), (7, 120), (9, 150)] {
        sc = sc.with_crash(ProcessId(i), Time::from_millis(at));
    }
    let r = run_scenario(default_net(n), &sc, ec_node_hb);
    assert!(r.all_decided, "f = 5 < 11/2 must still terminate");
    check_all(&r);
}

#[test]
fn n_equals_one_degenerates_gracefully() {
    let sc = Scenario::failure_free(1, 75, Time::from_secs(1));
    let r = run_scenario(default_net(1), &sc, ec_node_hb);
    assert!(r.all_decided);
    assert_eq!(r.decided_value(), 100);
    check_all(&r);
}

#[test]
fn two_processes_need_both_alive() {
    // n = 2 ⟹ majority = 2 ⟹ f must be 0; a failure-free pair decides.
    let sc = Scenario::failure_free(2, 76, Time::from_secs(5));
    let r = run_scenario(default_net(2), &sc, ec_node_hb);
    assert!(r.all_decided);
    check_all(&r);
}

#[test]
fn all_processes_propose_the_same_value() {
    let n = 5;
    let sc = Scenario {
        seed: 77,
        crashes: vec![],
        proposals: vec![9; n],
        horizon: Time::from_secs(5),
    };
    let r = run_scenario(default_net(n), &sc, ec_node_hb);
    assert!(r.all_decided);
    assert_eq!(r.decided_value(), 9, "validity forces the unanimous value");
    check_all(&r);
}

#[test]
fn consensus_survives_a_burst_partition_of_the_leader() {
    // The leader p0 is cut off in both directions from 20 ms to 250 ms —
    // mid-round-1. Leadership must move (or be re-established after the
    // heal) and consensus still terminate and agree.
    let n = 5;
    let healthy =
        LinkModel::reliable_uniform(SimDuration::from_millis(1), SimDuration::from_millis(4));
    let cut = LinkModel::partitioned_during(
        healthy.clone(),
        Time::from_millis(20),
        Time::from_millis(250),
    );
    let mut net = NetworkConfig::new(n).with_default(healthy);
    for i in 1..n {
        net = net
            .with_link(ProcessId(0), ProcessId(i), cut.clone())
            .with_link(ProcessId(i), ProcessId(0), cut.clone());
    }
    let sc = Scenario::failure_free(n, 78, Time::from_secs(30));
    let r = run_scenario(net, &sc, ec_node_hb);
    assert!(
        r.all_decided,
        "partition must not prevent termination after healing"
    );
    check_all(&r);
    // p0 was only partitioned, never crashed: it must decide too.
    assert!(
        r.decisions[0].is_some(),
        "the partitioned leader catches up after the heal"
    );
}

#[test]
fn scales_to_sixty_three_processes() {
    // Well beyond anything the paper evaluates analytically: n = 63 with
    // ten crashes. Θ(n) message complexity is what makes this cheap for
    // the ◇C algorithm.
    let n = 63;
    let mut sc = Scenario::failure_free(n, 80, Time::from_secs(60));
    for k in 0..10usize {
        sc = sc.with_crash(ProcessId(3 + 6 * k), Time::from_millis(10 + 15 * k as u64));
    }
    let r = run_scenario(default_net(n), &sc, fd_consensus::ec_node_leader);
    assert!(r.all_decided, "f = 10 < 63/2 must terminate");
    check_all(&r);
}

#[test]
fn majority_crash_blocks_liveness_but_never_safety() {
    // The necessity side of Theorem 2's f < n/2 assumption: with half the
    // processes gone (f = n/2), no majority of estimates or acks can ever
    // assemble, so the algorithm must NOT decide — and must not violate
    // safety while stuck.
    let n = 4;
    let sc = Scenario::failure_free(n, 81, Time::from_secs(5))
        .with_crash(ProcessId(2), Time::from_millis(5))
        .with_crash(ProcessId(3), Time::from_millis(8));
    let r = run_scenario(default_net(n), &sc, ec_node_hb);
    assert!(!r.all_decided, "a crashed majority must block termination");
    assert!(r.decisions.iter().all(|d| d.is_none()), "nobody may decide");
    ConsensusRun::new(&r.trace, n).check_safety().unwrap();
}

#[test]
fn coordinator_crash_exactly_between_proposition_and_acks() {
    // Surgical fault injection made possible by constant-delay links:
    // with Δ = 5 ms, the round-1 coordinator p0 has received estimates at
    // ~2Δ and broadcast its proposition; crashing it at 2Δ + ε kills it
    // before any ack returns (acks land at 3Δ). Participants adopted the
    // proposition (ts = 1) — the locking mechanism of Lemma 2 — and the
    // next coordinator must carry that value forward.
    use fd_consensus::EcConsensus;
    use fd_detectors::ScriptedDetector;
    let n = 5;
    let delta = SimDuration::from_millis(5);
    let netc = NetworkConfig::new(n).with_default(LinkModel::reliable_const(delta));
    let sc = Scenario {
        seed: 90,
        crashes: vec![(ProcessId(0), Time(2 * delta.ticks() + 500))],
        proposals: vec![11, 22, 33, 44, 55],
        horizon: Time::from_secs(10),
    };
    let r = run_scenario(netc, &sc, |pid, n| {
        // Leadership: p0 until its crash is noticed, then p1 (scripted
        // at 4Δ to keep the scenario deterministic).
        let schedule = ScriptedDetector::from_schedule(vec![
            (
                Time::ZERO,
                fd_core::FdOutput {
                    suspected: ProcessSet::new(),
                    trusted: Some(ProcessId(0)),
                },
            ),
            (
                Time(4 * delta.ticks()),
                fd_core::FdOutput {
                    suspected: ProcessSet::singleton(ProcessId(0)),
                    trusted: Some(ProcessId(1)),
                },
            ),
        ]);
        scripted_node(
            pid,
            schedule,
            EcConsensus::new(pid, n, ConsensusConfig::default()),
        )
    });
    assert!(r.all_decided);
    check_all(&r);
    // The dead coordinator's proposition had the largest (ts, value)
    // estimate: with all ts = 0, the lattice picks 55. Round 2's
    // coordinator gathers at least one ts = 1 estimate carrying it.
    assert_eq!(
        r.decided_value(),
        55,
        "the locked round-1 value must survive the crash"
    );
    assert!(r.max_decision_round().unwrap() >= 2);
}
