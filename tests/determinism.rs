//! Reproducibility: the whole stack — detectors, broadcast, consensus —
//! replays bit-identically under the same seed, and seeds actually
//! matter.

use ecfd::prelude::*;

fn run(seed: u64) -> RunResult {
    let n = 5;
    let sc = Scenario::failure_free(n, seed, Time::from_secs(5))
        .with_crash(ProcessId(2), Time::from_millis(40));
    run_scenario(default_net(n), &sc, ec_node_hb)
}

#[test]
fn same_seed_same_everything() {
    let a = run(12345);
    let b = run(12345);
    assert_eq!(
        a.trace.events(),
        b.trace.events(),
        "traces must be identical"
    );
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.decide_time, b.decide_time);
    assert_eq!(a.metrics.sent_total(), b.metrics.sent_total());
}

#[test]
fn different_seeds_differ_somewhere() {
    let a = run(1);
    let b = run(2);
    // Values agree by chance or not, but the message schedules (jittered
    // link delays) will differ.
    assert_ne!(a.trace.events(), b.trace.events());
}

#[test]
fn seeded_replay_is_stable_across_detector_types() {
    let n = 4;
    let sc = Scenario::failure_free(n, 99, Time::from_secs(5));
    let a = run_scenario(default_net(n), &sc, fd_consensus::ec_node_leader);
    let b = run_scenario(default_net(n), &sc, fd_consensus::ec_node_leader);
    assert_eq!(a.trace.events(), b.trace.events());
}
