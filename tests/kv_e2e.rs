//! End-to-end tests of the `kv` campaign scenario through the public
//! registry: parallel determinism, instrumentation invariance, and
//! crash-restart recovery under a fixed fault plan — the same contract
//! the `e8` and `chaos` scenarios honour, now over the full serving
//! stack (consensus + WAL + snapshot catch-up).

use ecfd::bench::campaign::scenario_by_name;
use ecfd::campaign::Campaign;

#[test]
fn kv_seed_results_are_independent_of_job_count() {
    let scenario = scenario_by_name("kv").expect("kv is registered");
    let serial = Campaign::new(scenario.as_ref(), 0..24).jobs(1).run();
    let parallel = Campaign::new(scenario.as_ref(), 0..24).jobs(4).run();
    // Same per-seed verdicts AND byte-identical traces (same digests),
    // whatever the worker count — even though most seeds crash and
    // restart a replica mid-workload.
    assert_eq!(serial.results, parallel.results);
    assert_eq!(
        serial.failed(),
        0,
        "kv sweep must be clean: {:?}",
        serial
            .results
            .iter()
            .filter(|r| r.violation.is_some())
            .collect::<Vec<_>>()
    );
    assert!(
        serial.latency_stats().is_some(),
        "kv runs report commit latency as decision latency"
    );
}

#[test]
fn kv_seed_results_are_independent_of_instrumentation() {
    let scenario = scenario_by_name("kv").expect("kv is registered");
    let bare = Campaign::new(scenario.as_ref(), 0..12).jobs(2).run();
    let registry = ecfd::obs::Registry::new();
    let observed = Campaign::new(scenario.as_ref(), 0..12)
        .jobs(2)
        .observe(&registry)
        .run();
    assert_eq!(bare.results, observed.results);
    assert_eq!(
        registry.counter("sim.events").get(),
        observed.total_events(),
        "registry event counter vs summed RunOutcome events"
    );
}

#[test]
fn fixed_crash_restart_plan_recovers_on_every_seed() {
    // The CI smoke plan: crash a replica mid-workload, restart it, and
    // demand (via the scenario's RecoveryMonitor) that catch-up
    // completes on every seed. The workload still varies per seed.
    let plan = fd_kv::standard_plan(fd_chaos::DetectorKind::Heartbeat);
    let scenario = fd_kv::KvScenario::fixed(plan).expect("standard plan is legal");
    let serial = Campaign::new(&scenario, 0..8).jobs(1).run();
    let parallel = Campaign::new(&scenario, 0..8).jobs(4).run();
    assert_eq!(serial.results, parallel.results);
    assert_eq!(
        serial.failed(),
        0,
        "every seed must catch up after restart: {:?}",
        serial
            .results
            .iter()
            .filter(|r| r.violation.is_some())
            .collect::<Vec<_>>()
    );
}

/// The acceptance sweep: 1000 seeds, byte-identical across `--jobs
/// {1,4}`, metrics on, generated chaos (crash/restart + partitions)
/// included. Minutes of work — run with `cargo test -- --ignored`.
#[test]
#[ignore]
fn kv_thousand_seed_sweep_is_deterministic() {
    let scenario = scenario_by_name("kv").expect("kv is registered");
    let serial = Campaign::new(scenario.as_ref(), 0..1000).jobs(1).run();
    let registry = ecfd::obs::Registry::new();
    let parallel = Campaign::new(scenario.as_ref(), 0..1000)
        .jobs(4)
        .observe(&registry)
        .run();
    assert_eq!(serial.results, parallel.results);
    assert_eq!(serial.failed(), 0, "1000-seed kv sweep must be clean");
    assert_eq!(
        registry.counter("sim.events").get(),
        parallel.total_events()
    );
}
