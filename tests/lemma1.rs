//! Lemma 1 of the paper, checked on concrete traces: "In any round r, at
//! most one coordinator c will send a non-null estimate [proposition] to
//! all processes at the end of Phase 2."
//!
//! The wire kinds distinguish null from non-null propositions, so the
//! invariant is a pure trace scan: for every round, the set of distinct
//! senders of `ec.proposition` (non-null) has at most one element.

use ecfd::prelude::*;
use fd_sim::TraceKind;
use std::collections::{HashMap, HashSet};

fn assert_lemma1(trace: &fd_sim::Trace, kind_label: &str) {
    let mut proposers: HashMap<u64, HashSet<ProcessId>> = HashMap::new();
    for ev in trace.events() {
        if let TraceKind::Sent {
            from,
            kind,
            round: Some(r),
            ..
        } = ev.kind
        {
            if kind == kind_label {
                proposers.entry(r).or_default().insert(from);
            }
        }
    }
    for (round, who) in proposers {
        assert!(
            who.len() <= 1,
            "Lemma 1 violated in round {round}: non-null propositions from {who:?}"
        );
    }
}

#[test]
fn at_most_one_nonnull_proposition_per_round_under_chaos() {
    // Adversarial detectors (everyone self-elects until stabilization)
    // maximize coordinator contention — exactly the situation Lemma 1
    // must survive. Sweep seeds and stabilization times.
    for seed in 0..12 {
        let n = 5;
        let stab = Time::from_millis(30 + 17 * seed);
        let sc = Scenario::failure_free(n, seed, Time::from_secs(10));
        let r = run_scenario(default_net(n), &sc, |pid, n| {
            scripted_node(
                pid,
                ScriptedDetector::chaos_then_leader(pid, n, stab, ProcessId((seed % 5) as usize)),
                EcConsensus::new(pid, n, ConsensusConfig::default()),
            )
        });
        assert!(r.all_decided, "seed {seed}");
        assert_lemma1(&r.trace, "ec.proposition");
        ConsensusRun::new(&r.trace, n).check_all().unwrap();
    }
}

#[test]
fn lemma1_holds_for_the_merged_variant_too() {
    use fd_consensus::EcMergedConsensus;
    for seed in 0..12 {
        let n = 5;
        let stab = Time::from_millis(30 + 13 * seed);
        let sc = Scenario::failure_free(n, seed, Time::from_secs(10));
        let r = run_scenario(default_net(n), &sc, |pid, n| {
            scripted_node(
                pid,
                ScriptedDetector::chaos_then_leader(pid, n, stab, ProcessId((seed % 5) as usize)),
                EcMergedConsensus::new(pid, n, ConsensusConfig::default()),
            )
        });
        assert!(r.all_decided, "seed {seed}");
        assert_lemma1(&r.trace, "ecm.proposition");
        ConsensusRun::new(&r.trace, n).check_all().unwrap();
    }
}

#[test]
fn lemma1_holds_with_real_detectors_and_crashes() {
    for seed in 0..10 {
        let n = 5;
        let sc = Scenario::failure_free(n, seed, Time::from_secs(10)).with_crash(
            ProcessId((seed as usize) % n),
            Time::from_millis(5 + seed * 9),
        );
        let r = run_scenario(default_net(n), &sc, ec_node_hb);
        assert!(r.all_decided, "seed {seed}");
        assert_lemma1(&r.trace, "ec.proposition");
    }
}
