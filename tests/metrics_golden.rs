//! Golden cross-check: the kernel's [`fd_sim::Metrics`] counters must
//! agree *exactly* with counts derived independently from the recorded
//! [`fd_sim::Trace`] — the two are maintained by separate code paths in
//! the world loop, so any drift means one of them is lying.

use ecfd::prelude::*;
use fd_core::Standalone;
use fd_detectors::HeartbeatDetector;
use fd_sim::{TraceEvent, TraceKind};

struct TraceCounts {
    sent: u64,
    delivered: u64,
    dropped: u64,
    sent_hb: u64,
    sent_by: Vec<u64>,
}

fn count(events: &[TraceEvent], n: usize) -> TraceCounts {
    let mut c = TraceCounts {
        sent: 0,
        delivered: 0,
        dropped: 0,
        sent_hb: 0,
        sent_by: vec![0; n],
    };
    for e in events {
        match e.kind {
            TraceKind::Sent { from, kind, .. } => {
                c.sent += 1;
                c.sent_by[from.index()] += 1;
                if kind == "hb.alive" {
                    c.sent_hb += 1;
                }
            }
            TraceKind::Delivered { .. } => c.delivered += 1,
            TraceKind::Dropped { .. } => c.dropped += 1,
            _ => {}
        }
    }
    c
}

#[test]
fn metrics_counters_match_trace_derived_counts() {
    // A seeded multi-detector run with crashes and a lossy link, so all
    // three counter families (sent / delivered / dropped) are non-trivial.
    let n = 5;
    let net = NetworkConfig::new(n).with_link(
        ProcessId(0),
        ProcessId(1),
        LinkModel::FairLossy {
            drop: 0.3,
            delay: DelayDist::Constant(SimDuration::from_millis(2)),
        },
    );
    let mut world = WorldBuilder::new(net)
        .seed(20260807)
        .crash_at(ProcessId(3), Time::from_millis(400))
        .crash_at(ProcessId(4), Time::from_millis(900))
        .build(|pid, n| {
            Standalone(LeaderByFirstNonSuspected::new(
                HeartbeatDetector::new(pid, n, HeartbeatConfig::default()),
                n,
            ))
        });
    world.run_until_time(Time::from_secs(3));
    let (trace, metrics) = world.into_results();
    let c = count(trace.events(), n);

    assert!(
        c.sent > 0 && c.delivered > 0 && c.dropped > 0,
        "exercise all families"
    );
    assert_eq!(metrics.sent_total(), c.sent);
    assert_eq!(metrics.delivered_total(), c.delivered);
    assert_eq!(metrics.dropped_total(), c.dropped);
    assert_eq!(metrics.sent_of_kind("hb.alive"), c.sent_hb);
    for pid in 0..n {
        assert_eq!(
            metrics.sent_by(ProcessId(pid)),
            c.sent_by[pid],
            "per-process sent count for p{pid}"
        );
    }
    // Conservation: everything sent is eventually delivered, dropped, or
    // still in flight at the horizon — so sent bounds the other two.
    assert!(c.delivered + c.dropped <= c.sent);
}
