//! Property-based detector tests: under arbitrary seeds, crash plans and
//! link jitter (within the models each algorithm assumes), every detector
//! satisfies its claimed class on a long-enough run.

use ecfd::prelude::*;
use fd_core::Standalone;
use fd_detectors::{
    FusedConfig, FusedDetector, HeartbeatConfig, HeartbeatDetector, LeaderConfig, LeaderDetector,
    RingConfig, RingDetector, StableLeaderConfig, StableLeaderDetector,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct FdPlan {
    n: usize,
    seed: u64,
    crashes: Vec<(usize, u64)>, // (victim, ms) — at most ⌈n/2⌉−1 victims
    jitter_max_ms: u64,
}

fn arb_plan() -> impl Strategy<Value = FdPlan> {
    (3usize..8, any::<u64>(), 1u64..5).prop_flat_map(|(n, seed, jitter)| {
        let f_max = (n - 1) / 2;
        prop::collection::vec((0..n, 50u64..400), 0..=f_max).prop_map(move |mut crashes| {
            crashes.sort();
            crashes.dedup_by_key(|c| c.0);
            FdPlan {
                n,
                seed,
                crashes,
                jitter_max_ms: jitter,
            }
        })
    })
}

fn run_plan<A: fd_sim::Actor>(
    plan: &FdPlan,
    make: impl FnMut(ProcessId, usize) -> A,
) -> (fd_sim::Trace, Time) {
    let net = NetworkConfig::new(plan.n).with_default(LinkModel::reliable_uniform(
        SimDuration::from_millis(1),
        SimDuration::from_millis(plan.jitter_max_ms.max(2)),
    ));
    let mut b = WorldBuilder::new(net).seed(plan.seed);
    for &(victim, at) in &plan.crashes {
        b = b.crash_at(ProcessId(victim), Time::from_millis(at));
    }
    let mut w = b.build(make);
    // Long horizon: timeouts must outgrow any jitter-induced mistakes and
    // the ring needs O(n) periods to circulate suspicion lists.
    let end = Time::from_secs(6);
    w.run_until_time(end);
    let (trace, _) = w.into_results();
    (trace, end)
}

fn class_or_fail(
    trace: &fd_sim::Trace,
    n: usize,
    end: Time,
    class: FdClass,
) -> Result<(), TestCaseError> {
    FdRun::new(trace, n, end)
        .check_class(class)
        .map_err(|v| TestCaseError::fail(format!("{v}")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn heartbeat_is_always_ep(plan in arb_plan()) {
        let (trace, end) = run_plan(&plan, |pid, n| {
            Standalone(HeartbeatDetector::new(pid, n, HeartbeatConfig::default()))
        });
        class_or_fail(&trace, plan.n, end, FdClass::EventuallyPerfect)?;
    }

    #[test]
    fn ring_is_always_ep(plan in arb_plan()) {
        let (trace, end) = run_plan(&plan, |pid, n| {
            Standalone(RingDetector::new(pid, n, RingConfig::default()))
        });
        class_or_fail(&trace, plan.n, end, FdClass::EventuallyPerfect)?;
    }

    #[test]
    fn leader_detector_is_always_ec(plan in arb_plan()) {
        let (trace, end) = run_plan(&plan, |pid, n| {
            Standalone(LeaderDetector::new(pid, n, LeaderConfig::default()))
        });
        class_or_fail(&trace, plan.n, end, FdClass::EventuallyConsistent)?;
        // And the eventual leader is the first correct process.
        let run = FdRun::new(&trace, plan.n, end);
        let first_correct = run.correct().first().expect("someone survives");
        for p in run.correct().iter() {
            prop_assert_eq!(run.final_trusted(p), Some(first_correct));
        }
    }

    #[test]
    fn fused_detector_is_always_ep_and_ec(plan in arb_plan()) {
        let (trace, end) = run_plan(&plan, |pid, n| {
            Standalone(FusedDetector::new(pid, n, FusedConfig::default()))
        });
        class_or_fail(&trace, plan.n, end, FdClass::EventuallyPerfect)?;
        class_or_fail(&trace, plan.n, end, FdClass::EventuallyConsistent)?;
    }

    #[test]
    fn stable_detector_is_always_ec(plan in arb_plan()) {
        let (trace, end) = run_plan(&plan, |pid, n| {
            Standalone(StableLeaderDetector::new(pid, n, StableLeaderConfig::default()))
        });
        class_or_fail(&trace, plan.n, end, FdClass::EventuallyConsistent)?;
        class_or_fail(&trace, plan.n, end, FdClass::EventuallyPerfect)?;
    }

    #[test]
    fn ec_wrapper_preserves_ep_and_adds_leadership(plan in arb_plan()) {
        let (trace, end) = run_plan(&plan, |pid, n| {
            Standalone(LeaderByFirstNonSuspected::new(
                HeartbeatDetector::new(pid, n, HeartbeatConfig::default()),
                n,
            ))
        });
        class_or_fail(&trace, plan.n, end, FdClass::EventuallyPerfect)?;
        class_or_fail(&trace, plan.n, end, FdClass::EventuallyConsistent)?;
    }
}
