//! Property-based tests of the simulation kernel: deterministic replay
//! under arbitrary seeds/topologies, causality of deliveries, and link
//! model bounds.

use ecfd::prelude::*;
use proptest::prelude::*;

/// An actor that gossips pseudorandomly — a workload generator whose
/// behaviour depends on every piece of kernel state (timers, delivery
/// order, per-process RNG).
struct Chatter;

#[derive(Clone, Debug)]
struct Blob(u64);
impl SimMessage for Blob {
    fn kind(&self) -> &'static str {
        "blob"
    }
}

impl Actor for Chatter {
    type Msg = Blob;
    fn on_start(&mut self, ctx: &mut Context<'_, Blob>) {
        ctx.set_timer(SimDuration::from_millis(1), TimerTag::new(0, 0, 0));
    }
    fn on_message(&mut self, ctx: &mut Context<'_, Blob>, from: ProcessId, m: Blob) {
        use rand::Rng;
        if m.0.is_multiple_of(3) && ctx.rng().gen_bool(0.5) {
            ctx.send(from, Blob(m.0 / 2));
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, Blob>, _t: TimerTag) {
        use rand::Rng;
        let x: u64 = ctx.rng().gen_range(0..100);
        let to = ProcessId((x % ctx.n() as u64) as usize);
        ctx.send(to, Blob(x));
        ctx.set_timer(SimDuration::from_millis(1 + x % 5), TimerTag::new(0, 0, 0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn replay_is_deterministic(seed in any::<u64>(), n in 2usize..8) {
        let mk = |seed: u64| {
            let mut w = WorldBuilder::new(NetworkConfig::new(n)).seed(seed).build(|_, _| Chatter);
            w.run_until_time(Time::from_millis(80));
            let (trace, metrics) = w.into_results();
            (trace, metrics.sent_total(), metrics.events_processed())
        };
        let (t1, s1, e1) = mk(seed);
        let (t2, s2, e2) = mk(seed);
        prop_assert_eq!(t1.events(), t2.events());
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(e1, e2);
    }

    #[test]
    fn deliveries_never_precede_sends(seed in any::<u64>()) {
        let n = 4;
        let mut w = WorldBuilder::new(NetworkConfig::new(n)).seed(seed).build(|_, _| Chatter);
        w.run_until_time(Time::from_millis(60));
        let (trace, _) = w.into_results();
        // For each (from,to,kind) channel, the k-th delivery cannot
        // happen before the k-th send on any link-respecting schedule;
        // check the weaker but universal invariant: every delivery time
        // is ≥ the earliest unmatched send time on that channel.
        use std::collections::HashMap;
        let mut sends: HashMap<(ProcessId, ProcessId), Vec<Time>> = HashMap::new();
        for ev in trace.events() {
            match ev.kind {
                TraceKind::Sent { from, to, .. } => {
                    sends.entry((from, to)).or_default().push(ev.at);
                }
                TraceKind::Delivered { from, to, .. } => {
                    let q = sends.get_mut(&(from, to)).expect("delivery without send");
                    prop_assert!(!q.is_empty(), "more deliveries than sends");
                    // Deliveries can reorder, so match the earliest send.
                    let earliest = *q.iter().min().unwrap();
                    prop_assert!(ev.at >= earliest, "delivery before any send");
                    let idx = q.iter().position(|t| *t == earliest).unwrap();
                    q.remove(idx);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn eventually_timely_links_respect_delta_after_gst(
        seed in any::<u64>(),
        gst_ms in 0u64..50,
        bound_ms in 1u64..10,
    ) {
        let n = 3;
        let gst = Time::from_millis(gst_ms);
        let bound = SimDuration::from_millis(bound_ms);
        let net = NetworkConfig::partially_synchronous(n, gst, bound, SimDuration::from_millis(200), 0.3);
        let mut w = WorldBuilder::new(net).seed(seed).build(|_, _| Chatter);
        w.run_until_time(Time::from_millis(150));
        let (trace, _) = w.into_results();
        use std::collections::HashMap;
        let mut pending: HashMap<(ProcessId, ProcessId), Vec<Time>> = HashMap::new();
        for ev in trace.events() {
            match ev.kind {
                TraceKind::Sent { from, to, .. } if from != to => {
                    pending.entry((from, to)).or_default().push(ev.at);
                }
                TraceKind::Delivered { from, to, .. } if from != to => {
                    // Any delivery of a message sent after GST must be
                    // within the bound. Conservatively: if ALL pending
                    // sends on this channel are post-GST, the delivery
                    // lag from the latest matching send candidate is
                    // bounded.
                    let q = pending.get_mut(&(from, to)).unwrap();
                    let earliest = *q.iter().min().unwrap();
                    if earliest >= gst {
                        prop_assert!(ev.at <= earliest + bound + SimDuration::from_millis(200));
                    }
                    let idx = q.iter().position(|t| *t == earliest).unwrap();
                    q.remove(idx);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn crashed_processes_stay_silent(seed in any::<u64>(), crash_ms in 1u64..50) {
        let n = 3;
        let victim = ProcessId(1);
        let crash = Time::from_millis(crash_ms);
        let mut w = WorldBuilder::new(NetworkConfig::new(n))
            .seed(seed)
            .crash_at(victim, crash)
            .build(|_, _| Chatter);
        w.run_until_time(Time::from_millis(120));
        let (trace, _) = w.into_results();
        for ev in trace.events() {
            if let TraceKind::Sent { from, .. } = ev.kind {
                if from == victim {
                    prop_assert!(ev.at <= crash, "crashed process sent at {}", ev.at);
                }
            }
        }
    }
}
