//! Property-based tests of the replicated log: under random command
//! batches, submitters, and crash plans — with and without a link-layer
//! mangler duplicating and reordering consensus messages — all surviving
//! replicas hold prefix-consistent logs and every command submitted by a
//! survivor is eventually decided exactly once per submission.

use ecfd::prelude::*;
use fd_consensus::{ConsensusConfig, MultiEc, MultiNode, NOOP};
use fd_detectors::HeartbeatDetector;
use fd_sim::chaos::{Intervention, NetChange, MANGLE};
use fd_sim::link::LinkMangler;
use fd_sim::trace::Payload;
use proptest::prelude::*;

type Replica = MultiNode<LeaderByFirstNonSuspected<HeartbeatDetector>>;

fn replica(pid: ProcessId, n: usize) -> Replica {
    MultiNode::new(
        pid,
        LeaderByFirstNonSuspected::new(
            HeartbeatDetector::new(pid, n, HeartbeatConfig::default()),
            n,
        ),
        MultiEc::new(pid, n, ConsensusConfig::default()),
    )
}

#[derive(Debug, Clone)]
struct LogPlan {
    n: usize,
    seed: u64,
    /// (submitting replica, command payload) — payloads made unique below.
    submissions: Vec<usize>,
    crash: Option<(usize, u64)>,
}

fn arb_plan() -> impl Strategy<Value = LogPlan> {
    (4usize..6, any::<u64>()).prop_flat_map(|(n, seed)| {
        (
            prop::collection::vec(0..n, 1..8),
            prop::option::of((1..n, 20u64..150)),
        )
            .prop_map(move |(submissions, crash)| LogPlan {
                n,
                seed,
                submissions,
                crash,
            })
    })
}

/// Run `plan` (optionally under a message mangler installed from time
/// zero) and check the three log properties: liveness for survivor
/// submissions, pairwise prefix consistency, and at-most-once decision
/// of every non-NOOP command.
fn check_log_properties(plan: &LogPlan, mangler: Option<LinkMangler>) -> Result<(), TestCaseError> {
    let n = plan.n;
    let mut w = WorldBuilder::new(default_net(n))
        .seed(plan.seed)
        .build(replica);
    if let Some(m) = mangler {
        w.schedule_intervention(
            Time(1),
            Intervention {
                tag: MANGLE,
                payload: Payload::None,
                change: NetChange::SetMangler(Some(m)),
            },
        );
    }
    // Unique commands: index+1 shifted so 0 (NOOP) never collides.
    let mut survivor_cmds = Vec::new();
    for (i, &replica_idx) in plan.submissions.iter().enumerate() {
        let cmd = 1000 + i as u64;
        let crashed_submitter = plan.crash.is_some_and(|(c, _)| c == replica_idx);
        if !crashed_submitter {
            survivor_cmds.push(cmd);
        }
        w.interact(ProcessId(replica_idx), move |node, ctx| {
            node.submit(ctx, cmd)
        });
    }
    if let Some((victim, at)) = plan.crash {
        w.schedule_crash(ProcessId(victim), Time::from_millis(at));
    }
    let survivors: Vec<usize> = (0..n)
        .filter(|&i| plan.crash.is_none_or(|(c, _)| c != i))
        .collect();
    let done = w.run_until(Time::from_secs(60), |w| {
        survivors.iter().all(|&i| {
            let vals: Vec<u64> = w
                .actor(ProcessId(i))
                .log()
                .iter()
                .map(|(_, v)| *v)
                .collect();
            survivor_cmds.iter().all(|c| vals.contains(c))
        })
    });
    prop_assert!(done, "survivor commands not all decided: {plan:?}");

    // Prefix consistency across every pair of survivors.
    let logs: Vec<Vec<(u64, u64)>> = survivors
        .iter()
        .map(|&i| w.actor(ProcessId(i)).log())
        .collect();
    for a in 0..logs.len() {
        for b in a + 1..logs.len() {
            let common = logs[a].len().min(logs[b].len());
            prop_assert_eq!(&logs[a][..common], &logs[b][..common], "prefix divergence");
        }
    }
    // No survivor command appears twice; NOOPs are the only repeats.
    for log in &logs {
        let mut seen = std::collections::HashSet::new();
        for (_, v) in log {
            if *v != NOOP {
                prop_assert!(seen.insert(*v), "command {v} decided twice");
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn survivor_logs_are_prefix_consistent_and_complete(plan in arb_plan()) {
        check_log_properties(&plan, None)?;
    }

    /// The same properties with a mangler duplicating and reordering
    /// every non-loopback message for the whole run. Duplicates exercise
    /// the idempotence of every consensus receive path (per-process
    /// reply maps, passive Idle/Done answers, decision relay); bounded
    /// reordering exercises late-round message handling. Drop stays at
    /// zero: the round protocol assumes reliable channels, and loss
    /// recovery is the serving layer's job (`fd-kv`'s repair timer).
    #[test]
    fn mangled_links_preserve_log_properties(plan in arb_plan()) {
        let mangler = LinkMangler {
            drop: 0.0,
            duplicate: 0.25,
            reorder: 0.25,
            skew: SimDuration::from_millis(20),
        };
        check_log_properties(&plan, Some(mangler))?;
    }
}
