//! Property-based safety: on *arbitrary* schedules — random seeds, crash
//! plans, link jitter, horizons that may cut runs off mid-flight — the
//! consensus protocols never violate uniform agreement, validity, or
//! integrity. (Liveness needs stabilization, so it is only asserted when
//! the run had room to finish.)

use ecfd::prelude::*;
use fd_consensus::{ct_node_hb, mr_node_leader};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Plan {
    n: usize,
    seed: u64,
    crashes: Vec<(usize, u64)>, // (victim, ms)
    horizon_ms: u64,
    jitter_max_ms: u64,
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    (3usize..8, any::<u64>(), 0u64..300, 1u64..8).prop_flat_map(
        |(n, seed, horizon_extra, jitter)| {
            let f_max = (n - 1) / 2;
            prop::collection::vec((0..n, 0u64..200), 0..=f_max).prop_map(move |mut crashes| {
                // Distinct victims only.
                crashes.sort();
                crashes.dedup_by_key(|c| c.0);
                Plan {
                    n,
                    seed,
                    crashes,
                    horizon_ms: 150 + horizon_extra,
                    jitter_max_ms: jitter,
                }
            })
        },
    )
}

fn net_for(plan: &Plan) -> NetworkConfig {
    NetworkConfig::new(plan.n).with_default(LinkModel::reliable_uniform(
        SimDuration::from_millis(1),
        SimDuration::from_millis(plan.jitter_max_ms.max(2)),
    ))
}

fn scenario_for(plan: &Plan) -> Scenario {
    let mut sc = Scenario::failure_free(plan.n, plan.seed, Time::from_millis(plan.horizon_ms));
    for &(victim, at) in &plan.crashes {
        sc = sc.with_crash(ProcessId(victim), Time::from_millis(at));
    }
    sc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ec_safety_on_arbitrary_schedules(plan in arb_plan()) {
        let r = run_scenario(net_for(&plan), &scenario_for(&plan), ec_node_hb);
        let check = ConsensusRun::new(&r.trace, plan.n);
        check.check_safety().map_err(|v| TestCaseError::fail(v.to_string()))?;
        if r.all_decided {
            check.check_all().map_err(|v| TestCaseError::fail(v.to_string()))?;
        }
    }

    #[test]
    fn ct_safety_on_arbitrary_schedules(plan in arb_plan()) {
        let r = run_scenario(net_for(&plan), &scenario_for(&plan), ct_node_hb);
        let check = ConsensusRun::new(&r.trace, plan.n);
        check.check_safety().map_err(|v| TestCaseError::fail(v.to_string()))?;
    }

    #[test]
    fn mr_safety_on_arbitrary_schedules(plan in arb_plan()) {
        let r = run_scenario(net_for(&plan), &scenario_for(&plan), mr_node_leader);
        let check = ConsensusRun::new(&r.trace, plan.n);
        check.check_safety().map_err(|v| TestCaseError::fail(v.to_string()))?;
    }

    #[test]
    fn ec_liveness_with_generous_horizon(plan in arb_plan()) {
        // Same plans, but with time to finish: termination must hold.
        let mut sc = scenario_for(&plan);
        sc.horizon = Time::from_secs(30);
        let r = run_scenario(net_for(&plan), &sc, ec_node_hb);
        prop_assert!(r.all_decided, "EC did not terminate on {plan:?}");
        ConsensusRun::new(&r.trace, plan.n)
            .check_all()
            .map_err(|v| TestCaseError::fail(v.to_string()))?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn paxos_safety_on_arbitrary_schedules(plan in arb_plan()) {
        let r = run_scenario(
            net_for(&plan),
            &scenario_for(&plan),
            fd_consensus::paxos_node_leader,
        );
        let check = ConsensusRun::new(&r.trace, plan.n);
        check.check_safety().map_err(|v| TestCaseError::fail(v.to_string()))?;
    }
}
