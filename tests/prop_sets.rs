//! Property-based tests of the core data structures: `ProcessSet`
//! algebra, the estimate lattice, and majority arithmetic.

use ecfd::prelude::*;
use fd_consensus::{majority, Estimate};
use fd_core::MAX_PROCESSES;
use proptest::prelude::*;

fn arb_set() -> impl Strategy<Value = ProcessSet> {
    prop::collection::vec(0usize..MAX_PROCESSES, 0..24)
        .prop_map(|ids| ids.into_iter().map(ProcessId).collect())
}

proptest! {
    #[test]
    fn union_is_commutative_and_idempotent(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(&a | &b, &b | &a);
        prop_assert_eq!(&a | &a, a);
    }

    #[test]
    fn intersection_distributes_over_union(a in arb_set(), b in arb_set(), c in arb_set()) {
        prop_assert_eq!(&a & &(&b | &c), &(&a & &b) | &(&a & &c));
    }

    #[test]
    fn de_morgan(a in arb_set(), b in arb_set()) {
        let n = MAX_PROCESSES;
        prop_assert_eq!((&a | &b).complement(n), a.complement(n) & b.complement(n));
        prop_assert_eq!((&a & &b).complement(n), a.complement(n) | b.complement(n));
    }

    #[test]
    fn difference_is_intersection_with_complement(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(&a - &b, &a & &b.complement(MAX_PROCESSES));
    }

    #[test]
    fn complement_involution(a in arb_set()) {
        prop_assert_eq!(a.complement(MAX_PROCESSES).complement(MAX_PROCESSES), a);
    }

    #[test]
    fn insert_remove_roundtrip(a in arb_set(), id in 0usize..MAX_PROCESSES) {
        let p = ProcessId(id);
        let mut s = a.clone();
        let was_in = s.contains(p);
        s.insert(p);
        prop_assert!(s.contains(p));
        s.remove(p);
        prop_assert!(!s.contains(p));
        if !was_in {
            prop_assert_eq!(s, a - ProcessSet::singleton(p));
        }
    }

    #[test]
    fn len_matches_iteration(a in arb_set()) {
        prop_assert_eq!(a.len(), a.iter().count());
        prop_assert_eq!(a.is_empty(), a.is_empty());
    }

    #[test]
    fn iteration_is_strictly_sorted(a in arb_set()) {
        let v = a.to_vec();
        for w in v.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn first_is_the_minimum(a in arb_set()) {
        prop_assert_eq!(a.first(), a.iter().min());
    }

    #[test]
    fn subset_relation_consistent(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(a.is_subset_of(&(&a | &b)), true);
        prop_assert_eq!((&a & &b).is_subset_of(&a), true);
        prop_assert_eq!(a.is_subset_of(&b), (&a - &b).is_empty());
    }

    #[test]
    fn estimate_lattice_is_associative_on_ts(x in 0u64..100, y in 0u64..100, z in 0u64..100) {
        let a = Estimate { value: 1, ts: x };
        let b = Estimate { value: 2, ts: y };
        let c = Estimate { value: 3, ts: z };
        let left = Estimate::newer_of(Estimate::newer_of(a, b), c);
        let right = Estimate::newer_of(a, Estimate::newer_of(b, c));
        // newer_of is a lattice join on (ts, value): fully associative.
        prop_assert_eq!(left, right);
    }

    #[test]
    fn majority_overlaps_itself(n in 1usize..128) {
        // Two majorities always intersect: the quorum property consensus
        // safety rests on.
        prop_assert!(2 * majority(n) > n);
        // And a majority is achievable by correct processes when f < n/2.
        let f = (n - 1) / 2;
        prop_assert!(n - f >= majority(n));
    }
}
