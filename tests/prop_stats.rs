//! Property-based tests of the campaign report's order statistics
//! against a straightforward reference implementation.

use ecfd::campaign::Stats;
use proptest::prelude::*;

/// Textbook nearest-rank percentile at per-mille resolution: the
/// (p/10)-th percentile of n sorted samples is the sample at 1-based
/// rank ⌈(p/1000)·n⌉. Written with floating-point math on purpose, so
/// it shares no code (and no rounding shortcuts) with the integer
/// formula under test.
fn reference_permille(sorted: &[u64], p: usize) -> u64 {
    let n = sorted.len();
    assert!(n > 0);
    let rank = ((p as f64 / 1000.0) * n as f64).ceil().max(1.0) as usize;
    sorted[rank.min(n) - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn stats_match_reference_nearest_rank(
        samples in prop::collection::vec(any::<u64>(), 1..200)
    ) {
        let stats = Stats::from_samples(samples.clone()).unwrap();
        let mut sorted = samples;
        sorted.sort_unstable();

        prop_assert_eq!(stats.count, sorted.len());
        prop_assert_eq!(stats.min, sorted[0]);
        prop_assert_eq!(stats.max, *sorted.last().unwrap());
        prop_assert_eq!(stats.p50, reference_permille(&sorted, 500));
        prop_assert_eq!(stats.p99, reference_permille(&sorted, 990));
        prop_assert_eq!(stats.p999, reference_permille(&sorted, 999));
        // Percentiles are order statistics: monotone and within range.
        prop_assert!(stats.min <= stats.p50);
        prop_assert!(stats.p50 <= stats.p99);
        prop_assert!(stats.p99 <= stats.p999);
        prop_assert!(stats.p999 <= stats.max);
    }
}
