//! PROPERTIES.md ↔ checker registry consistency.
//!
//! PROPERTIES.md is the written spec of every property the workspace
//! enforces. A spec that drifts from the code is worse than no spec:
//! a monitor without a catalog entry is an undocumented obligation,
//! and a catalog entry without a monitor is a claim nothing checks.
//! This test diffs the document against the generated key registry in
//! both directions, and verifies that every checker anchor the
//! document cites points at a real file, a real line, and the named
//! function.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use fd_obs::keys::{self, KeyCategory};

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn properties_md() -> String {
    fs::read_to_string(repo_root().join("PROPERTIES.md")).expect("PROPERTIES.md exists")
}

/// Keys the catalog must document: every registered `Check`, plus the
/// one `Obs` key that doubles as a monitor name (`kv.recovery`, the
/// fd-kv restart catch-up monitor).
fn registered_monitors() -> BTreeSet<&'static str> {
    let mut set: BTreeSet<&'static str> = keys::ALL
        .iter()
        .filter(|(_, _, cat)| *cat == KeyCategory::Check)
        .map(|(_, key, _)| *key)
        .collect();
    set.insert(keys::KV_RECOVERY);
    set
}

/// Keys PROPERTIES.md documents: one `### `key`` heading per entry.
fn documented_monitors(doc: &str) -> BTreeSet<String> {
    doc.lines()
        .filter_map(|l| l.strip_prefix("### `"))
        .filter_map(|rest| rest.split('`').next())
        .map(str::to_string)
        .collect()
}

#[test]
fn every_registered_monitor_is_documented() {
    let doc = properties_md();
    let documented = documented_monitors(&doc);
    let missing: Vec<&str> = registered_monitors()
        .into_iter()
        .filter(|k| !documented.contains(*k))
        .collect();
    assert!(
        missing.is_empty(),
        "registered monitors with no PROPERTIES.md entry (add a `### \\`key\\`` section): {missing:?}"
    );
}

#[test]
fn every_documented_monitor_is_registered() {
    let doc = properties_md();
    let registered = registered_monitors();
    let orphans: Vec<String> = documented_monitors(&doc)
        .into_iter()
        .filter(|k| !registered.contains(k.as_str()))
        .collect();
    assert!(
        orphans.is_empty(),
        "PROPERTIES.md documents monitors that are not registered in fd-obs::keys: {orphans:?}"
    );
}

#[test]
fn documented_monitors_match_named_checks() {
    // Every name `run_named_check` understands is a Check key, so the
    // two registries can only drift if someone adds a check without
    // registering its key (or vice versa). Pin the overlap here so the
    // doc test above transitively covers NAMED_CHECKS too.
    let registered = registered_monitors();
    for name in fd_core::properties::NAMED_CHECKS {
        assert!(
            registered.contains(name),
            "NAMED_CHECKS entry {name:?} is not a registered Check key"
        );
    }
}

/// Every `path:line` anchor in PROPERTIES.md must point inside the
/// repo, at a line that exists, within a few lines of a Rust item
/// (`fn`/`struct`). Three lines of slack: the cited line is the item
/// itself, but doc-comment edits above it shouldn't break the build.
#[test]
fn checker_anchors_point_at_real_code() {
    let doc = properties_md();
    let mut anchors = Vec::new();
    for line in doc.lines() {
        // Match markdown-link anchors of the form
        // [`crates/.../file.rs:123`](crates/.../file.rs).
        let mut rest = line;
        while let Some(start) = rest.find("[`crates/") {
            let tail = &rest[start + 2..];
            let Some(end) = tail.find('`') else { break };
            let anchor = &tail[..end];
            if let Some((path, line_no)) = anchor.rsplit_once(':') {
                if let Ok(no) = line_no.parse::<usize>() {
                    anchors.push((path.to_string(), no));
                }
            }
            rest = &tail[end..];
        }
    }
    assert!(
        anchors.len() >= 20,
        "expected at least one file:line anchor per catalog entry, found {}",
        anchors.len()
    );
    for (path, line_no) in anchors {
        let full = repo_root().join(&path);
        let src = fs::read_to_string(&full)
            .unwrap_or_else(|e| panic!("PROPERTIES.md cites missing file {path}: {e}"));
        let lines: Vec<&str> = src.lines().collect();
        assert!(
            line_no <= lines.len(),
            "PROPERTIES.md cites {path}:{line_no} but the file has {} lines",
            lines.len()
        );
        let lo = line_no.saturating_sub(4);
        let hi = (line_no + 3).min(lines.len());
        let window = &lines[lo..hi];
        assert!(
            window
                .iter()
                .any(|l| l.contains("fn ") || l.contains("struct ") || l.contains("NAMED_CHECKS")),
            "PROPERTIES.md cites {path}:{line_no}, but no fn/struct is within 3 lines — \
             the checker moved; update the anchor"
        );
    }
}

/// The exhaustive-coverage claims in the summary table must agree with
/// what the fd-mc targets actually check.
#[test]
fn exhaustive_column_matches_mc_targets() {
    use fd_bench::mc::{detector_target, protocol_target, McProtocol};
    use fd_chaos::DetectorKind;
    use fd_sim::Time;

    let doc = properties_md();
    let mut exhaustive: BTreeSet<&str> = BTreeSet::new();
    for kind in DetectorKind::ALL {
        for p in detector_target(kind, 3, Time::from_millis(300)).properties {
            exhaustive.insert(p);
        }
    }
    for proto in McProtocol::ALL {
        for p in protocol_target(proto, 3, Time::from_millis(300)).properties {
            exhaustive.insert(p);
        }
    }
    // consensus.all subsumes its four clauses; the doc marks them
    // exhaustive "via consensus.all".
    if exhaustive.contains(keys::CONSENSUS_ALL) {
        for k in [
            keys::CONSENSUS_AGREEMENT,
            keys::CONSENSUS_VALIDITY,
            keys::CONSENSUS_INTEGRITY,
            keys::CONSENSUS_TERMINATION,
        ] {
            exhaustive.insert(k);
        }
    }
    for key in exhaustive {
        // Find the summary-table row for this key and require a ✓ (not
        // a —) in the exhaustive column (the last cell).
        let row = doc
            .lines()
            .find(|l| l.starts_with(&format!("| `{key}` ")))
            .unwrap_or_else(|| panic!("no summary-table row for exhaustively-covered {key}"));
        // `\|` inside backticked CLI flags is an escaped pipe, not a
        // cell separator.
        let unescaped = row.replace("\\|", "¦");
        let last = unescaped
            .trim_end_matches('|')
            .rsplit('|')
            .next()
            .unwrap_or("")
            .to_string();
        assert!(
            last.contains('✓'),
            "{key} is checked by an fd-mc target but its summary row does not mark it exhaustive: {row}"
        );
    }
}
