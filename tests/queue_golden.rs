//! Golden-digest equivalence of the two kernel event-queue
//! implementations.
//!
//! The timer wheel replaced the classic `BinaryHeap` on the hot path;
//! its correctness contract is not "approximately the same schedule" but
//! *byte-identical runs*: every event pops in the same `(time, seq)`
//! order, so traces, digests, message counts, and event counts match the
//! classic queue exactly. These tests pin that contract across the full
//! E8 surface (all three protocols × all sizes × seed-derived crash
//! plans) and on a lossy-link topology, where drop sampling makes any
//! divergence in RNG-stream consumption order immediately visible.

use ecfd::bench::campaign::E8Scenario;
use ecfd::campaign::Scenario as CampaignScenario;
use ecfd::consensus::{ct_node_hb, ec_node_hb, mr_node_leader, run_scenario_with_queue, RunResult};
use ecfd::sim::{LinkModel, NetworkConfig, ProcessId, QueueImpl, SimDuration, Time};

mod large_n {
    //! Large-n equivalence: at n = 512 a single detector period lands
    //! hundreds of events in one wheel bucket and broadcasts cross the
    //! active-span insert path constantly — the regime where a wheel
    //! ordering bug would hide from the small-n consensus sweeps.

    use ecfd::core::Standalone;
    use ecfd::detectors::{RingConfig, RingDetector, VCubeConfig, VCubeDetector};
    use ecfd::sim::{
        LinkModel, NetworkConfig, ProcessId, QueueImpl, SimDuration, Time, TraceMode, WorldBuilder,
    };

    fn lossy_net(n: usize) -> NetworkConfig {
        NetworkConfig::new(n).with_default(LinkModel::fair_lossy(
            SimDuration::from_millis(1),
            SimDuration::from_millis(8),
            0.15,
        ))
    }

    /// Digest plus kernel counters of one n = 512 run.
    fn run<A: ecfd::sim::Actor>(
        queue: QueueImpl,
        mk: impl Fn(ProcessId, usize) -> A + Copy,
    ) -> (u64, u64, u64) {
        let n = 512;
        let mut w = WorldBuilder::new(lossy_net(n))
            .seed(99)
            .queue_impl(queue)
            .trace_mode(TraceMode::ObsOnly)
            .crash_at(ProcessId(100), Time::from_millis(120))
            .build(mk);
        w.run_until_time(Time::from_millis(400));
        let events = w.metrics().events_processed();
        let messages = w.metrics().sent_total();
        let (trace, _) = w.into_results();
        (trace.digest(), events, messages)
    }

    #[test]
    fn wheel_and_classic_queues_agree_at_n_512() {
        let ring = |pid, n| Standalone(RingDetector::new(pid, n, RingConfig::default()));
        assert_eq!(
            run(QueueImpl::Wheel, ring),
            run(QueueImpl::Classic, ring),
            "ring digests/counters must match across queue implementations"
        );
        let vcube = |pid, n| Standalone(VCubeDetector::new(pid, n, VCubeConfig::default()));
        assert_eq!(
            run(QueueImpl::Wheel, vcube),
            run(QueueImpl::Classic, vcube),
            "vcube digests/counters must match across queue implementations"
        );
    }
}

/// Run one E8 plan under the given queue implementation.
fn run_e8_seed(seed: u64, queue: QueueImpl) -> RunResult {
    let plan = E8Scenario.plan(seed);
    let sc = ecfd::consensus::Scenario {
        seed: plan.seed,
        crashes: plan.crashes.clone(),
        proposals: (0..plan.n()).map(|i| 100 + i as u64).collect(),
        horizon: plan.horizon,
    };
    match plan.params.field("proto").as_str() {
        Some("ct") => run_scenario_with_queue(plan.net.clone(), &sc, ct_node_hb, queue),
        Some("mr") => run_scenario_with_queue(plan.net.clone(), &sc, mr_node_leader, queue),
        _ => run_scenario_with_queue(plan.net.clone(), &sc, ec_node_hb, queue),
    }
}

fn assert_identical(seed: u64, wheel: &RunResult, classic: &RunResult) {
    assert_eq!(
        wheel.trace.digest(),
        classic.trace.digest(),
        "seed {seed}: wheel and classic queues must produce byte-identical traces"
    );
    assert_eq!(wheel.trace.events(), classic.trace.events(), "seed {seed}");
    assert_eq!(
        wheel.metrics.sent_total(),
        classic.metrics.sent_total(),
        "seed {seed}: message counts"
    );
    assert_eq!(
        wheel.metrics.events_processed(),
        classic.metrics.events_processed(),
        "seed {seed}: kernel event counts"
    );
    assert_eq!(wheel.decide_time, classic.decide_time, "seed {seed}");
}

#[test]
fn wheel_and_classic_queues_agree_across_the_e8_sweep() {
    // 0..108 covers every (protocol, n) cell twelve times over (the
    // cell layout repeats every 108 seeds); run a full block plus a
    // spill into the second block.
    for seed in 0..120 {
        let wheel = run_e8_seed(seed, QueueImpl::Wheel);
        let classic = run_e8_seed(seed, QueueImpl::Classic);
        assert_identical(seed, &wheel, &classic);
    }
}

#[test]
fn wheel_and_classic_queues_agree_on_lossy_links() {
    // Fair-lossy links consult the loss RNG once per transmission, so a
    // queue that consumed RNG streams in a different order — or fanned a
    // broadcast out in a different destination order — would diverge
    // within a few deliveries.
    for seed in [3, 17, 42] {
        let n = 5;
        let net = NetworkConfig::new(n).with_default(LinkModel::fair_lossy(
            SimDuration::from_millis(1),
            SimDuration::from_millis(8),
            0.15,
        ));
        let sc = ecfd::consensus::Scenario {
            seed,
            crashes: vec![(ProcessId(1), Time::from_millis(120))],
            proposals: (0..n).map(|i| 100 + i as u64).collect(),
            horizon: Time::from_secs(30),
        };
        let wheel = run_scenario_with_queue(net.clone(), &sc, ec_node_hb, QueueImpl::Wheel);
        let classic = run_scenario_with_queue(net, &sc, ec_node_hb, QueueImpl::Classic);
        assert_identical(seed, &wheel, &classic);
        assert!(
            wheel
                .trace
                .events()
                .iter()
                .any(|e| { matches!(e.kind, ecfd::sim::TraceKind::Dropped { .. }) }),
            "seed {seed}: the lossy scenario should actually drop messages"
        );
    }
}
