//! End-to-end tests of the large-n scale surface: the `scale` campaign
//! scenario's determinism contract (byte-identical per-seed results
//! whatever the worker count), and the three detector cost classes run
//! through the full property checkers at sizes the rest of the test
//! suite never reaches.
//!
//! The checker sweeps use *completeness-sized* horizons — long enough
//! for suspicion to fully disseminate (hop-by-hop on the ring, that is
//! O(n) poll periods) — unlike the throughput-sized horizons of
//! `bench-scale`, which only demand weak completeness.

use ecfd::bench::scale::{scale_cell_of, ScaleClass};
use ecfd::campaign::Campaign;
use ecfd::core::{FdClass, FdRun, ProcessSet, Standalone};
use ecfd::detectors::{
    HeartbeatConfig, HeartbeatDetector, RingConfig, RingDetector, VCubeConfig, VCubeDetector,
};
use ecfd::sim::{
    LinkModel, NetworkConfig, ProcessId, SimDuration, Time, Trace, TraceMode, WorldBuilder,
};

fn stable_net(n: usize) -> NetworkConfig {
    NetworkConfig::new(n).with_default(LinkModel::reliable_uniform(
        SimDuration::from_millis(1),
        SimDuration::from_millis(4),
    ))
}

/// Run one detector class at size `n` with a single crash, in ObsOnly
/// trace mode (what the scale sweep uses — the checkers only need
/// observations and crash records).
fn run_class(
    class: ScaleClass,
    n: usize,
    crash: (usize, u64),
    horizon_ms: u64,
    seed: u64,
) -> (Trace, Time) {
    let end = Time::from_millis(horizon_ms);
    let builder = WorldBuilder::new(stable_net(n))
        .seed(seed)
        .trace_mode(TraceMode::ObsOnly)
        .crash_at(ProcessId(crash.0), Time::from_millis(crash.1));
    let trace = match class {
        ScaleClass::Heartbeat => {
            let mut w = builder.build(|pid, n| {
                Standalone(HeartbeatDetector::new(pid, n, HeartbeatConfig::default()))
            });
            w.run_until_time(end);
            w.into_results().0
        }
        ScaleClass::Ring => {
            let mut w = builder
                .build(|pid, n| Standalone(RingDetector::new(pid, n, RingConfig::default())));
            w.run_until_time(end);
            w.into_results().0
        }
        ScaleClass::VCube => {
            let mut w = builder
                .build(|pid, n| Standalone(VCubeDetector::new(pid, n, VCubeConfig::default())));
            w.run_until_time(end);
            w.into_results().0
        }
    };
    (trace, end)
}

/// All three classes at `n`: ◇P holds and every correct process ends
/// suspecting exactly the crashed one.
fn checker_sweep(n: usize, horizon_ms: &[u64; 3]) {
    let victim = n / 3;
    let crash = (victim, 300);
    for (class, &h) in ScaleClass::ALL.iter().zip(horizon_ms) {
        let (trace, end) = run_class(*class, n, crash, h, 7 + n as u64);
        let run = FdRun::new(&trace, n, end);
        run.check_class(FdClass::EventuallyPerfect)
            .unwrap_or_else(|e| panic!("{:?} at n={n}: {e:?}", class));
        let crashed: ProcessSet = [ProcessId(victim)].into_iter().collect();
        for p in (0..n).filter(|&p| p != victim) {
            assert_eq!(
                run.final_suspects(ProcessId(p)),
                crashed,
                "{class:?} at n={n}: process {p} has the wrong final suspect list"
            );
        }
    }
}

#[test]
fn all_three_classes_satisfy_eventually_perfect_at_n_64() {
    // Ring needs ~n poll periods (640ms) post-detection for the suspect
    // list to circulate; heartbeat and vCube converge within a few
    // timeouts. Horizons per class: heartbeat, ring, vcube.
    checker_sweep(64, &[1200, 2500, 1500]);
}

/// The n = 256 sweep processes tens of millions of kernel events under
/// the quadratic class — minutes in a debug test binary. Run with
/// `cargo test --release -- --ignored`.
#[test]
#[ignore]
fn all_three_classes_satisfy_eventually_perfect_at_n_256() {
    checker_sweep(256, &[1500, 6000, 2000]);
}

#[test]
fn scale_campaign_seeds_are_independent_of_job_count() {
    // Seeds 0..6 are the six n = 64 cells (the cell list is n-major);
    // larger sizes are covered by the ignored full sweep below.
    let scenario = ecfd::bench::campaign::scenario_by_name("scale").expect("scale is registered");
    let serial = Campaign::new(scenario.as_ref(), 0..6).jobs(1).run();
    let parallel = Campaign::new(scenario.as_ref(), 0..6).jobs(4).run();
    assert_eq!(
        serial.results, parallel.results,
        "per-seed verdicts and digests must be byte-identical across --jobs"
    );
    assert_eq!(
        serial.failed(),
        0,
        "weak completeness must hold on every n = 64 cell: {:?}",
        serial
            .results
            .iter()
            .filter(|r| r.violation.is_some())
            .collect::<Vec<_>>()
    );
}

#[test]
fn scale_seed_layout_wraps_the_cell_list() {
    // 22 cells: 4 sizes × 3 classes × 2 nets minus the two
    // heartbeat@4096 cells. Seed 22 restarts the list.
    let c0 = scale_cell_of(0);
    let c22 = scale_cell_of(22);
    assert_eq!(c0.n, 64);
    assert_eq!((c22.n, c22.class), (c0.n, c0.class));
    assert_eq!(scale_cell_of(21).n, 4096);
}

/// The acceptance sweep: every cell of the scale family (n up to 4096),
/// byte-identical across `--jobs {1,4}`. About a minute of work — run
/// with `cargo test --release -- --ignored`.
#[test]
#[ignore]
fn full_scale_sweep_is_deterministic_across_jobs() {
    let scenario = ecfd::bench::campaign::scenario_by_name("scale").expect("scale is registered");
    let serial = Campaign::new(scenario.as_ref(), 0..22).jobs(1).run();
    let parallel = Campaign::new(scenario.as_ref(), 0..22).jobs(4).run();
    assert_eq!(serial.results, parallel.results);
    assert_eq!(serial.failed(), 0, "full scale sweep must be clean");
}
