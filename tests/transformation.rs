//! Cross-crate tests of the Fig. 2 transformation over *different* ◇C
//! bases — the paper notes the algorithm "only uses detector D to query
//! for its trusted process", so any ◇C (indeed any Ω) must work.

use ecfd::prelude::*;
use fd_detectors::ec_to_ep::{EcToEp, EcToEpConfig, EcToEpNode};
use fd_detectors::{HeartbeatConfig, HeartbeatDetector, LeaderConfig, LeaderDetector};

fn jitter(n: usize) -> NetworkConfig {
    NetworkConfig::new(n).with_default(LinkModel::reliable_uniform(
        SimDuration::from_millis(1),
        SimDuration::from_millis(4),
    ))
}

#[test]
fn fig2_over_the_candidate_leader_detector() {
    let n = 5;
    let mut w = WorldBuilder::new(jitter(n))
        .seed(61)
        .crash_at(ProcessId(3), Time::from_millis(250))
        .build(|pid, n| {
            EcToEpNode::new(
                LeaderDetector::new(pid, n, LeaderConfig::default()),
                EcToEp::new(pid, n, EcToEpConfig::default()),
            )
        });
    let end = Time::from_secs(4);
    w.run_until_time(end);
    let (trace, _) = w.into_results();
    FdRun::new(&trace, n, end)
        .with_suspects_tag(EP_SUSPECTS_OUT)
        .check_class(FdClass::EventuallyPerfect)
        .unwrap();
}

#[test]
fn fig2_over_a_heartbeat_based_ec_detector() {
    // A different ◇C base: heartbeat ◇P + first-non-suspected leader.
    let n = 5;
    let mut w = WorldBuilder::new(jitter(n))
        .seed(62)
        .crash_at(ProcessId(1), Time::from_millis(300))
        .build(|pid, n| {
            EcToEpNode::new(
                LeaderByFirstNonSuspected::new(
                    HeartbeatDetector::new(pid, n, HeartbeatConfig::default()),
                    n,
                ),
                EcToEp::new(pid, n, EcToEpConfig::default()),
            )
        });
    let end = Time::from_secs(4);
    w.run_until_time(end);
    let (trace, _) = w.into_results();
    let run = FdRun::new(&trace, n, end).with_suspects_tag(EP_SUSPECTS_OUT);
    run.check_class(FdClass::EventuallyPerfect).unwrap();
    // The underlying detector's own output is ALSO ◇P here — but the
    // transformed output must match the crashed set exactly too.
    for p in run.correct().iter() {
        assert_eq!(run.final_suspects(p).to_vec(), vec![ProcessId(1)]);
    }
}

#[test]
fn fig2_output_beats_the_poor_accuracy_of_its_own_base() {
    // The base ◇C here suspects n−1 processes (Ω-grade); the transformed
    // ◇P output converges to ∅ in a crash-free run — the transformation
    // *improves* accuracy, which is its entire point.
    let n = 4;
    let mut w = WorldBuilder::new(jitter(n)).seed(63).build(|pid, n| {
        EcToEpNode::new(
            LeaderDetector::new(pid, n, LeaderConfig::default()),
            EcToEp::new(pid, n, EcToEpConfig::default()),
        )
    });
    let end = Time::from_secs(3);
    w.run_until_time(end);
    let (trace, _) = w.into_results();
    let base = FdRun::new(&trace, n, end);
    let transformed = FdRun::new(&trace, n, end).with_suspects_tag(EP_SUSPECTS_OUT);
    for p in 0..n {
        let p = ProcessId(p);
        assert_eq!(
            base.final_suspects(p).len(),
            n - 1,
            "base suspects all but leader"
        );
        assert!(
            transformed.final_suspects(p).is_empty(),
            "transformed output is accurate"
        );
    }
}

#[test]
fn namespace_registry_is_consistent_across_crates() {
    // fd-broadcast mirrors the BROADCAST namespace constant (it cannot
    // depend on fd-detectors without inverting the crate DAG); make sure
    // the mirror never drifts.
    use fd_core::Component;
    let rb: fd_broadcast_rb = fd_broadcast::ReliableBroadcast::new(ProcessId(0));
    assert_eq!(rb.ns(), fd_detectors::ns::BROADCAST);
}

#[allow(non_camel_case_types)]
type fd_broadcast_rb = fd_broadcast::ReliableBroadcast<u64>;

#[test]
fn eventually_only_the_leaders_links_carry_messages() {
    // §4: "Eventually only these links carry messages" — after
    // stabilization, all periodic traffic of the Fig. 2 stack flows on
    // the leader's input and output links; no non-leader pair exchanges
    // anything.
    let n = 6;
    let leader = ProcessId(0);
    let mut w = WorldBuilder::new(jitter(n)).seed(64).build(|pid, n| {
        EcToEpNode::new(
            LeaderDetector::new(pid, n, LeaderConfig::default()),
            EcToEp::new(pid, n, EcToEpConfig::default()),
        )
    });
    let end = Time::from_secs(3);
    w.run_until_time(end);
    let (trace, _) = w.into_results();

    // Generous stabilization margin: ignore the first second.
    let cutoff = Time::from_secs(1);
    let mut off_leader = 0u64;
    for ev in trace.events() {
        if let fd_sim::TraceKind::Sent { from, to, kind, .. } = ev.kind {
            if ev.at >= cutoff && from != leader && to != leader {
                off_leader += 1;
                eprintln!("off-leader traffic: {from}->{to} {kind} at {}", ev.at);
            }
        }
    }
    assert_eq!(
        off_leader, 0,
        "non-leader links must fall silent after stabilization"
    );
}

#[test]
fn fig2_over_the_stable_leader_detector() {
    // Third ◇C base: the punish-ranked stable detector of [2]. Any
    // leader-providing detector must work under Fig. 2.
    use fd_detectors::{StableLeaderConfig, StableLeaderDetector};
    let n = 5;
    let mut w = WorldBuilder::new(jitter(n))
        .seed(65)
        .crash_at(ProcessId(2), Time::from_millis(300))
        .build(|pid, n| {
            EcToEpNode::new(
                StableLeaderDetector::new(pid, n, StableLeaderConfig::default()),
                EcToEp::new(pid, n, EcToEpConfig::default()),
            )
        });
    let end = Time::from_secs(4);
    w.run_until_time(end);
    let (trace, _) = w.into_results();
    FdRun::new(&trace, n, end)
        .with_suspects_tag(EP_SUSPECTS_OUT)
        .check_class(FdClass::EventuallyPerfect)
        .unwrap();
}
